//! A measured, load-balanced datacenter fleet (§VI-D, done by simulation
//! instead of accounting).
//!
//! [`crate::CaseStudy`] reproduces the paper's cluster numbers analytically:
//! a diurnal curve, a load threshold and a hand-fed B-mode speedup. This
//! module *measures* them instead. A [`Fleet`] is N servers — each an SMT
//! core pair whose mode is picked by its own
//! [`stretch::ClosedLoopStretch`] controller — fed by one diurnal-modulated
//! open-loop arrival stream that a pluggable [`LoadBalancer`] spreads across
//! the machines. Requests queue per server exactly as in
//! [`sim_qos::ServerSim`] (FCFS over the service's worker threads,
//! log-normal service times whose CPU-bound part stretches with the engaged
//! mode's delivered performance), and queues persist across control
//! intervals on a continuous clock, so tails near saturation reflect real
//! backlog build-up rather than a freshly reset queue. Each control
//! interval every server computes its own tail latency from its own
//! requests and feeds it to its monitor through the
//! [`cpu_sim::ColocationPolicy`] closed-loop hook, so B-mode engagement is
//! a *measured* decision with hysteresis, not a load threshold applied by
//! fiat.
//!
//! The engagement thresholds are calibrated against the fleet itself
//! ([`calibrated_monitor`]): short pinned-mode runs at the paper's
//! 85%-of-peak engagement load measure the tail-to-target ratio servers
//! actually show there — once under the baseline mode's delivered
//! performance (the engage threshold) and once stretched (the disengage
//! threshold). Calibrating on the fleet rather than on a lone server makes
//! the thresholds account for whatever smoothing the load balancer
//! provides. The analytical [`crate::CaseStudy`] stays available as a
//! cross-check, and `tests/fleet.rs` pins the two within two percentage
//! points of each other.
//!
//! Everything is deterministic: arrivals, balancer choices and every
//! server's service times come from independent [`sim_model::SimRng`]
//! streams forked from the fleet seed ([`server_seed`]), so a fixed-seed
//! fleet run is bit-identical across processes and servers never share a
//! random stream.
//!
//! # Fleet at scale: sharding, racks, skip-ahead
//!
//! Under a [`FleetTopology::Racked`] topology the fleet is a cluster of
//! racks: the cluster tier splits the offered load evenly across racks (by
//! server count) and the configured rack balancer dispatches *within* each
//! rack, so racks never exchange queue state. Each rack is then one shard
//! of [`Fleet::run_with_workers`]: shards simulate concurrently on a
//! [`sim_model::parallel_map`] pool, each from its own [`rack_seed`]-derived
//! RNG streams, and the merge folds per-shard partials in shard-index order
//! through the canonical reducers ([`sim_stats::det_merge`]) and bit-exact
//! integer histogram merges — so the report is bit-identical for every
//! worker count, including 1. A `Flat` fleet is exactly the historical
//! single-shard run (shard 0 reuses the fleet seed unchanged), and a
//! 1-rack `Racked` fleet is bit-identical to `Flat` under the same
//! balancer. Peak measurement and threshold calibration run on a single
//! rack (the fleet's dispatch unit) rather than the whole cluster, which
//! keeps 10k-server construction cheap and is identical to the historical
//! behaviour for flat fleets.
//!
//! Memory stays bounded at scale through [`TailAccumulation::Binned`]
//! (day- and fleet-level tails in fixed-resolution
//! [`sim_stats::LatencyHistogram`] bins instead of raw-sample vectors), and
//! time through a per-server *skip-ahead watermark*: an idle server — one
//! whose last worker completion is behind the incoming arrival — answers
//! balancer backlog probes in O(1) without scanning its workers, so a
//! lightly-loaded fleet's dispatch cost tracks the busy servers, not the
//! fleet size.

use crate::diurnal::DiurnalPattern;
use crate::topology::{FleetTopology, TailAccumulation};
use cpu_sim::{ColocationPolicy, QosObservation};
use serde::{Deserialize, Serialize};
use sim_model::{parallel_map, CanonicalKey, KeyEncoder, SimRng};
use sim_qos::{ArrivalGenerator, ArrivalProcess, ServiceSpec};
use sim_stats::{det_merge, det_sum, percentile, LatencyHistogram, Percentiles};
use stretch::orchestrator::PerformanceTable;
use stretch::{ClosedLoopStretch, MonitorConfig, QosPolicy, StretchConfig};

/// How the fleet's front end spreads arriving requests over the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancer {
    /// Cycle through the servers in order, ignoring their state.
    RoundRobin,
    /// Send each request to the server with the least queued work (an
    /// idealised omniscient dispatcher; O(N) per request).
    LeastLoaded,
    /// Sample two distinct servers uniformly and pick the less loaded — the
    /// classic "power of two choices" dispatcher, nearly as good as
    /// least-loaded at O(1) state inspection.
    PowerOfTwoChoices,
}

impl LoadBalancer {
    /// All balancers, in documentation order.
    pub const ALL: [LoadBalancer; 3] =
        [LoadBalancer::RoundRobin, LoadBalancer::LeastLoaded, LoadBalancer::PowerOfTwoChoices];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            LoadBalancer::RoundRobin => "round-robin",
            LoadBalancer::LeastLoaded => "least-loaded",
            LoadBalancer::PowerOfTwoChoices => "power-of-two-choices",
        }
    }
}

impl std::fmt::Display for LoadBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl CanonicalKey for LoadBalancer {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.tag(match self {
            LoadBalancer::RoundRobin => 0,
            LoadBalancer::LeastLoaded => 1,
            LoadBalancer::PowerOfTwoChoices => 2,
        });
    }
}

/// Scale knobs for a fleet run: how many machines and how many measured
/// requests per server per control interval (the measurement budget — the
/// simulated slice of each interval, exactly as [`sim_qos::SimParams::quick`] is a
/// slice of a single-server run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetScale {
    /// Number of servers in the fleet.
    pub servers: usize,
    /// Measured requests per server per control interval.
    pub requests_per_server: usize,
    /// Fleet seed; every RNG stream in the run forks from it.
    pub seed: u64,
}

impl FleetScale {
    /// CI/test scale: 8 servers, 150 requests per server-interval.
    pub fn quick(seed: u64) -> FleetScale {
        FleetScale { servers: 8, requests_per_server: 150, seed }
    }

    /// Figure scale: 24 servers, 400 requests per server-interval.
    pub fn standard(seed: u64) -> FleetScale {
        FleetScale { servers: 24, requests_per_server: 400, seed }
    }

    /// Datacenter scale: 10 000 servers, 20 requests per server-interval.
    /// Meant to be paired with a [`FleetTopology::Racked`] topology (so the
    /// run shards) and [`TailAccumulation::Binned`] (so memory stays
    /// bounded).
    pub fn datacenter(seed: u64) -> FleetScale {
        FleetScale { servers: 10_000, requests_per_server: 20, seed }
    }
}

impl CanonicalKey for FleetScale {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.servers).usize(self.requests_per_server).u64(self.seed);
    }
}

/// Full configuration of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers.
    pub servers: usize,
    /// The latency-sensitive service every server runs.
    pub service: ServiceSpec,
    /// Shape of the open-loop arrival stream; its rate is overridden each
    /// interval by the diurnal pattern.
    pub arrivals: ArrivalProcess,
    /// Diurnal load pattern modulating the fleet-wide arrival rate.
    pub pattern: DiurnalPattern,
    /// Dispatcher spreading requests over the servers (the *global*
    /// balancer; ignored inside racks under a racked topology, where the
    /// rack balancer dispatches instead).
    pub balancer: LoadBalancer,
    /// Cluster → rack → server organisation; also the sharding unit for
    /// [`Fleet::run_with_workers`].
    pub topology: FleetTopology,
    /// How day- and fleet-level sojourn tails are retained.
    pub tails: TailAccumulation,
    /// Number of simulated days (each day replays the diurnal pattern).
    pub days: usize,
    /// Control interval in hours (how often each server's monitor acts).
    pub interval_hours: f64,
    /// Measured requests per server per interval.
    pub requests_per_server: usize,
    /// Provisioned Stretch configurations on every core.
    pub stretch: StretchConfig,
    /// Per-server software-monitor tuning.
    pub monitor: MonitorConfig,
    /// Per-mode delivered performance and batch speedup.
    pub table: PerformanceTable,
    /// Fleet seed.
    pub seed: u64,
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("a fleet needs at least one server".into());
        }
        self.topology.validate(self.servers)?;
        self.tails.validate()?;
        if self.days == 0 {
            return Err("a fleet run covers at least one day".into());
        }
        self.service.validate()?;
        self.arrivals.validate()?;
        self.monitor.policy.validate()?;
        if !(self.interval_hours > 0.0 && self.interval_hours <= 24.0) {
            return Err(format!("control interval {} h must be in (0, 24]", self.interval_hours));
        }
        // The day accounting (hours_engaged, hour-of-day wrap) assumes the
        // control interval tiles the 24-hour day exactly.
        let day_fraction = 24.0 / self.interval_hours;
        if (day_fraction - day_fraction.round()).abs() > 1e-9 {
            return Err(format!(
                "control interval {} h must divide the 24-hour day evenly",
                self.interval_hours
            ));
        }
        if self.requests_per_server < 20 {
            return Err(format!(
                "{} requests per server-interval cannot resolve a tail percentile (need >= 20)",
                self.requests_per_server
            ));
        }
        for (what, perf) in [
            ("baseline", self.table.baseline),
            ("B-mode", self.table.b_mode),
            ("Q-mode", self.table.q_mode),
        ] {
            if !(perf.ls_performance > 0.0 && perf.ls_performance <= 1.0) {
                return Err(format!(
                    "{what} LS performance {} must be in (0, 1]",
                    perf.ls_performance
                ));
            }
            if !(perf.batch_speedup > 0.0 && perf.batch_speedup.is_finite()) {
                return Err(format!(
                    "{what} batch speedup {} must be positive and finite",
                    perf.batch_speedup
                ));
            }
        }
        Ok(())
    }

    /// Number of control intervals per 24-hour day.
    pub fn intervals(&self) -> usize {
        crate::diurnal::day_steps(self.interval_hours)
    }

    /// Number of control intervals over the whole run (`days` × per-day).
    pub fn total_intervals(&self) -> usize {
        self.days * self.intervals()
    }
}

impl CanonicalKey for FleetConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.servers)
            .field(&self.service)
            .field(&self.arrivals)
            .field(&self.pattern)
            .field(&self.balancer)
            .field(&self.topology)
            .field(&self.tails)
            .usize(self.days)
            .f64(self.interval_hours)
            .usize(self.requests_per_server)
            .field(&self.stretch)
            .field(&self.monitor)
            .field(&self.table)
            .u64(self.seed);
    }
}

/// The seed of one server's private service-time stream. Derived from the
/// fleet seed and the server index only, so adding servers to a fleet never
/// perturbs the streams of the existing ones and no two servers share one.
pub fn server_seed(fleet_seed: u64, server: usize) -> u64 {
    // A dedicated root (fleet seed xor a fixed tag) forked once per server;
    // forks are functions of (root state, stream id) only, and the stream id
    // keeps them pairwise distinct.
    SimRng::new(fleet_seed ^ 0x5e72_76f1_ee75_ca1e).fork(server as u64 + 1).next_u64()
}

/// The seed of one rack's (= one shard's) private RNG root — arrival
/// stream, balancer draws and the [`server_seed`] roots of its servers all
/// derive from it. Rack 0 reuses the fleet seed *unchanged*: a flat fleet
/// is a single rack, so this choice makes `Flat` and a 1-rack `Racked`
/// topology bit-identical to the historical single-shard run. Further
/// racks fork from a dedicated tagged root, so their streams are
/// independent of rack 0's and of each other.
pub fn rack_seed(fleet_seed: u64, rack: usize) -> u64 {
    if rack == 0 {
        fleet_seed
    } else {
        SimRng::new(fleet_seed ^ 0x7ac4_5eed_11ac_0b1d).fork(rack as u64).next_u64()
    }
}

/// The per-server peak sustainable rate (requests/second), measured *on the
/// fleet itself* at its real operating point — every core colocated, the
/// baseline mode's delivered performance: the highest per-server rate at
/// which the fleet, through its own load balancer and with its own
/// measurement budget, still meets the tail target on the median
/// server-interval. Determined by bisection over pinned-mode mini-runs,
/// mirroring how [`sim_qos::ServerSim::find_peak_load_rps`] establishes a lone
/// server's peak. The result does not depend on `cfg.monitor` (the runs are
/// pinned-mode), so one measurement serves both threshold calibration and
/// the day's run — [`Fleet::with_peak`] accepts it precomputed.
///
/// Calibrating on the fleet matters twice over: a queue-aware balancer
/// pools the servers' capacity (so the fleet peak can sit well above
/// `servers ×` the single-server peak), and calibrating at the *colocated*
/// operating point keeps "load 1.0" QoS-sustainable in baseline mode — a
/// peak taken at full dedicated-core performance would make the colocated
/// fleet supercritical at its own rated peak, piling up hours of backlog
/// that poisons the tail signal long after the peak passes.
///
/// Under a [`FleetTopology::Racked`] topology the measurement runs on *one
/// rack* (the fleet's actual dispatch unit — the cluster tier only ever
/// offers a rack its even share of the load), which keeps 10k-server
/// construction cheap; for a flat fleet it is the whole fleet, exactly as
/// before. Server-intervals that measured zero requests are skipped — a
/// starved server has no tail, not a perfect 0 ms one.
pub fn measured_peak_rps(cfg: &FleetConfig) -> f64 {
    let cal = calibration_config(cfg);
    let cfg = &cal;
    let spec = &cfg.service;
    let baseline_perf = cfg.table.baseline.ls_performance.clamp(0.05, 1.0);
    // Hard ceiling: the no-queueing throughput of one server's workers.
    let capacity_rps = spec.workers as f64 * 1000.0 / spec.mean_service_ms(baseline_perf);
    // Invariant across every bisection probe: hoist the per-server slowdown
    // table and metric out of the closure instead of rebuilding them per
    // probe.
    let slowdowns = vec![spec.slowdown(baseline_perf); cfg.servers];
    let metric = spec.tail_metric.percentile();
    let meets = |per_server_rps: f64| -> bool {
        let mut state = DispatchState::new(cfg, cfg.seed ^ 0x9ea4);
        let mut tails = Vec::with_capacity(4 * cfg.servers);
        for t in 0..6u64 {
            let (per_server, _) = run_interval(
                cfg,
                &mut state,
                cfg.balancer,
                per_server_rps * cfg.servers as f64,
                &slowdowns,
                t,
            );
            if t >= 2 {
                for stats in &per_server {
                    if let Some(tail) = stats.percentile(metric) {
                        tails.push(tail);
                    }
                }
            }
        }
        percentile(&tails, 50.0).expect("peak calibration produced samples") <= spec.qos_target_ms
    };
    let mut lo = capacity_rps * 0.05;
    let mut hi = capacity_rps;
    if !meets(lo) {
        return lo; // the target is hopeless; keep a positive rate for the run
    }
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The configuration peak measurement and threshold calibration run on:
/// the fleet's dispatch unit. Flat fleets calibrate on themselves (the
/// historical behaviour, bit-exactly); racked fleets calibrate on one rack
/// flattened out — same per-server load, same balancer, same measurement
/// budget as any rack of the real run sees.
fn calibration_config(cfg: &FleetConfig) -> FleetConfig {
    match cfg.topology {
        FleetTopology::Flat => cfg.clone(),
        FleetTopology::Racked(rt) => {
            let mut sub = cfg.clone();
            sub.servers = cfg.servers / rt.racks;
            sub.balancer = rt.rack_balancer;
            sub.topology = FleetTopology::Flat;
            sub
        }
    }
}

/// Dispatch state shared by every interval of one shard of one fleet run:
/// per-server worker availability (queues persist across intervals), the
/// per-server skip-ahead watermark (each server's latest worker-completion
/// time, so idle servers answer backlog probes in O(1)), per-server
/// service-time streams, the balancer's round-robin cursor and RNG, the
/// arrival-stream root and the continuous clock.
struct DispatchState {
    workers: Vec<Vec<f64>>,
    max_avail: Vec<f64>,
    service_rngs: Vec<SimRng>,
    rr_next: usize,
    balancer_rng: SimRng,
    arrival_root: SimRng,
    clock_ms: f64,
}

impl DispatchState {
    /// State for a whole (flat) fleet — the calibration paths.
    fn new(cfg: &FleetConfig, seed: u64) -> DispatchState {
        DispatchState::for_servers(cfg, seed, cfg.servers)
    }

    /// State for one shard of `servers` machines under shard seed `seed`.
    /// Service streams are keyed by the shard seed and the shard-*local*
    /// index — for shard 0 of a run (and any flat fleet) this is exactly
    /// the historical per-server derivation.
    fn for_servers(cfg: &FleetConfig, seed: u64, servers: usize) -> DispatchState {
        let mut root = SimRng::new(seed);
        let arrival_root = root.fork(1);
        let balancer_rng = root.fork(2);
        DispatchState {
            workers: vec![vec![0.0; cfg.service.workers]; servers],
            max_avail: vec![0.0; servers],
            service_rngs: (0..servers).map(|s| SimRng::new(server_seed(seed, s))).collect(),
            rr_next: 0,
            balancer_rng,
            arrival_root,
            clock_ms: 0.0,
        }
    }
}

/// A day- or fleet-level sojourn collection under either
/// [`TailAccumulation`] policy. Merging two accumulators is bit-exact for
/// both variants — exact accumulators concatenate their raw samples (and
/// sort-based percentiles are permutation-independent *for the
/// shard-index-order concatenation the merge uses*), binned accumulators
/// add integer bin counts — which is what lets the sharded merge produce
/// identical reports for every worker count.
#[derive(Debug, Clone, PartialEq)]
enum TailAcc {
    Exact(Percentiles),
    Binned(LatencyHistogram),
}

impl TailAcc {
    fn new(tails: &TailAccumulation) -> TailAcc {
        match *tails {
            TailAccumulation::Exact => TailAcc::Exact(Percentiles::new()),
            TailAccumulation::Binned { resolution_ms, max_ms } => {
                TailAcc::Binned(LatencyHistogram::new(resolution_ms, max_ms))
            }
        }
    }

    fn record(&mut self, value_ms: f64) {
        match self {
            TailAcc::Exact(p) => p.record(value_ms),
            TailAcc::Binned(h) => h.record(value_ms),
        }
    }

    fn absorb(&mut self, other: &TailAcc) {
        match (self, other) {
            (TailAcc::Exact(a), TailAcc::Exact(b)) => a.extend(b.samples().iter().copied()),
            (TailAcc::Binned(a), TailAcc::Binned(b)) => a.merge(b),
            _ => panic!("mismatched tail accumulation variants"),
        }
    }

    fn percentile(&self, p: f64) -> Option<f64> {
        match self {
            TailAcc::Exact(s) => s.percentile(p),
            TailAcc::Binned(h) => h.percentile(p),
        }
    }

    fn len(&self) -> usize {
        match self {
            TailAcc::Exact(s) => s.len(),
            TailAcc::Binned(h) => h.len(),
        }
    }
}

/// Simulates one control interval's measurement slice for one shard:
/// `shard servers × requests_per_server` arrivals at `rate_rps`, dispatched
/// through `balancer` onto the shard's persistent per-server queues.
/// Returns per-server sojourn collections (always exact — the monitor path
/// needs exact per-interval tails and they are transient) and the shard's
/// interval-wide accumulator (under the configured retention policy).
///
/// Per-server sample counts are surfaced through the returned
/// [`Percentiles`] (`len()`): under a queue-aware balancer the per-server
/// interval count is random and can be zero, and callers must treat such
/// server-intervals as *unmeasured* rather than substituting a tail.
fn run_interval(
    cfg: &FleetConfig,
    state: &mut DispatchState,
    balancer: LoadBalancer,
    rate_rps: f64,
    slowdowns: &[f64],
    interval_idx: u64,
) -> (Vec<Percentiles>, TailAcc) {
    let n = state.workers.len();
    let spec = &cfg.service;
    let mut arrivals = ArrivalGenerator::new(
        cfg.arrivals.with_rate(rate_rps),
        state.arrival_root.fork(interval_idx),
    );
    let mut per_server: Vec<Percentiles> = vec![Percentiles::new(); n];
    let mut fleet = TailAcc::new(&cfg.tails);
    let mut last_arrival = state.clock_ms;
    for _ in 0..n * cfg.requests_per_server {
        let arrival = state.clock_ms + arrivals.next_arrival_ms();
        last_arrival = arrival;
        let s = match balancer {
            LoadBalancer::RoundRobin => {
                let s = state.rr_next;
                state.rr_next = (state.rr_next + 1) % n;
                s
            }
            LoadBalancer::LeastLoaded => (0..n)
                .min_by(|&a, &b| {
                    backlog(&state.workers[a], state.max_avail[a], arrival)
                        .partial_cmp(&backlog(&state.workers[b], state.max_avail[b], arrival))
                        .expect("no NaN backlogs")
                })
                .expect("at least one server"),
            LoadBalancer::PowerOfTwoChoices => {
                let a = state.balancer_rng.below(n as u64) as usize;
                let b = if n > 1 {
                    let mut b = state.balancer_rng.below(n as u64 - 1) as usize;
                    if b >= a {
                        b += 1;
                    }
                    b
                } else {
                    a
                };
                let backlog_a = backlog(&state.workers[a], state.max_avail[a], arrival);
                let backlog_b = backlog(&state.workers[b], state.max_avail[b], arrival);
                if backlog_a <= backlog_b {
                    a
                } else {
                    b
                }
            }
        };
        // Earliest-available worker on the chosen server (FCFS with greedy
        // assignment, as in `sim_qos::ServerSim`).
        let (widx, avail) = state.workers[s]
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN worker times"))
            .expect("at least one worker");
        let start = arrival.max(avail);
        let service_time = state.service_rngs[s]
            .log_normal(spec.service_median_ms * slowdowns[s], spec.service_sigma);
        let done = start + service_time;
        state.workers[s][widx] = done;
        if done > state.max_avail[s] {
            state.max_avail[s] = done;
        }
        let sojourn = done - arrival;
        per_server[s].record(sojourn);
        fleet.record(sojourn);
    }
    state.clock_ms = last_arrival;
    (per_server, fleet)
}

/// Total queued work (ms) ahead of a request arriving `now` on one server.
///
/// `max_avail` is the server's skip-ahead watermark (its latest worker
/// completion): when it is already behind `now` the server is fully idle
/// and the backlog is exactly the `0.0` the scan would compute — answered
/// in O(1), which is what keeps balancer probes cheap on a mostly-idle
/// fleet.
fn backlog(workers: &[f64], max_avail: f64, now: f64) -> f64 {
    if max_avail <= now {
        return 0.0;
    }
    workers.iter().map(|&avail| (avail - now).max(0.0)).sum()
}

/// Calibrates tail-latency monitor thresholds so the measured control loop
/// mirrors the paper's load rule "engage B-mode below `engage_below_load` of
/// peak" — by measurement, on the fleet itself. Two short pinned-mode runs
/// at exactly that load record the tail-to-target ratio every server shows
/// per interval: under the baseline mode's delivered performance (its
/// *median* becomes the engage threshold) and under B-mode performance (the
/// disengage threshold). Because the calibration runs through the same
/// balancer, budget and queues as the real day, the thresholds
/// automatically absorb the smoothing a queue-aware dispatcher provides.
///
/// The two thresholds are read off the calibration distribution
/// asymmetrically on purpose. Engagement is protected by hysteresis (two
/// consecutive slack observations), so its threshold can sit at the median.
/// Disengagement fires on a *single* pressure sample — the paper wants the
/// monitor to back off promptly when QoS is at risk — so its threshold is
/// the 90th percentile of the stretched-mode distribution: high enough that
/// ordinary measurement noise at sub-threshold load does not flap a server
/// out of B-mode, low enough that genuinely rising load still disengages
/// within an interval or two.
///
/// The `monitor` field of `cfg` is ignored (that is what is being derived).
///
/// # Panics
///
/// Panics if `engage_below_load` is not in `(0, 1]` or `cfg` is invalid.
pub fn calibrated_monitor(cfg: &FleetConfig, engage_below_load: f64) -> MonitorConfig {
    calibrated_monitor_with_peak(cfg, engage_below_load, measured_peak_rps(cfg))
}

/// [`calibrated_monitor`] with the per-server peak already measured (via
/// [`measured_peak_rps`]), so callers that also construct the fleet can run
/// the peak bisection once instead of twice.
///
/// # Panics
///
/// Panics if `engage_below_load` is not in `(0, 1]`, the peak is not
/// positive, or `cfg` is invalid.
pub fn calibrated_monitor_with_peak(
    cfg: &FleetConfig,
    engage_below_load: f64,
    peak_rps: f64,
) -> MonitorConfig {
    assert!(
        engage_below_load > 0.0 && engage_below_load <= 1.0,
        "engagement load {engage_below_load} must be a fraction of peak"
    );
    assert!(peak_rps > 0.0, "peak rate must be positive");
    cfg.validate().expect("invalid fleet configuration");
    // Like the peak bisection, calibration runs on the fleet's dispatch
    // unit: the whole fleet when flat, one rack when racked.
    let cal = calibration_config(cfg);
    let cfg = &cal;
    let rate = engage_below_load * cfg.servers as f64 * peak_rps;
    let metric = cfg.service.tail_metric.percentile();
    let discard = 2usize; // queue warm-up intervals
    let measure = 6usize;
    let ratios_for = |perf: f64, tag: u64| -> Vec<f64> {
        let mut state = DispatchState::new(cfg, cfg.seed ^ tag);
        let slowdowns = vec![cfg.service.slowdown(perf.clamp(0.05, 1.0)); cfg.servers];
        let mut ratios = Vec::with_capacity(measure * cfg.servers);
        for t in 0..(discard + measure) as u64 {
            let (per_server, _) = run_interval(cfg, &mut state, cfg.balancer, rate, &slowdowns, t);
            if t >= discard as u64 {
                // Skip server-intervals that measured nothing: a starved
                // server contributes no evidence, and a substituted 0.0
                // would drag the calibration median toward "all slack".
                for stats in &per_server {
                    if let Some(tail) = stats.percentile(metric) {
                        ratios.push(tail / cfg.service.qos_target_ms);
                    }
                }
            }
        }
        ratios
    };
    let baseline = ratios_for(cfg.table.baseline.ls_performance, 0xca1b_0001);
    let stretched = ratios_for(cfg.table.b_mode.ls_performance, 0xca1b_0002);
    let engage_below =
        percentile(&baseline, 50.0).expect("calibration produced samples").clamp(0.05, 1.40);
    let disengage_above = percentile(&stretched, 90.0)
        .expect("calibration produced samples")
        .clamp(engage_below + 0.02, 1.45);
    MonitorConfig {
        policy: QosPolicy::TailLatency { engage_below, disengage_above },
        engage_after: 2,
        violations_before_throttle: 4,
    }
}

/// Per-interval fleet telemetry.
///
/// Small-sample contract: `requests_per_server` is a *fleet-wide average*
/// measurement budget, not a per-server guarantee — under a queue-aware
/// balancer the per-server interval count is random and can be zero.
/// `measured_servers` counts the servers whose interval actually resolved
/// a tail; the remaining `servers - measured_servers` were starved
/// (unmeasured), contributed no tail sample and fed their monitor nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetIntervalReport {
    /// Hour of day at the interval start.
    pub hour: f64,
    /// Offered load (fraction of fleet peak).
    pub load: f64,
    /// Servers whose monitor had B-mode engaged during the interval.
    pub engaged_servers: usize,
    /// Servers that measured at least one request this interval (only these
    /// contribute tail evidence; see the small-sample contract above).
    pub measured_servers: usize,
    /// Fleet-wide 99th-percentile sojourn time over the interval (ms).
    /// Under [`TailAccumulation::Binned`] this is conservative to within
    /// one bin resolution.
    pub p99_ms: f64,
    /// Fleet batch throughput during the interval, relative to baseline.
    pub batch_throughput: f64,
}

/// Per-server summary over the whole run.
///
/// Small-sample contract: tail fields summarise *measured* requests only.
/// A server can sit idle for whole intervals (`starved_intervals` counts
/// them); those intervals produce no tail sample, no QoS violation and no
/// monitor observation — the controller simply holds its previous mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSummary {
    /// Intervals this server spent in B-mode.
    pub engaged_intervals: usize,
    /// Intervals in which this server measured zero requests (unmeasured:
    /// excluded from tails, violations and monitor feeding).
    pub starved_intervals: usize,
    /// The server's own p99 sojourn time over the run (ms); conservative
    /// to one bin under [`TailAccumulation::Binned`].
    pub p99_ms: f64,
    /// Requests this server processed (measured only).
    pub requests: usize,
    /// Mode changes its monitor decided.
    pub mode_changes: u64,
    /// CPI²-style co-runner throttling escalations.
    pub throttle_events: u64,
}

/// Result of a fleet run (`days` × 24 hours).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-interval telemetry, in time order.
    pub intervals: Vec<FleetIntervalReport>,
    /// Per-server summaries, in server order.
    pub servers: Vec<ServerSummary>,
    /// Mean batch throughput relative to baseline over all server-intervals.
    pub average_batch_throughput: f64,
    /// Fraction of server-intervals with B-mode engaged.
    pub fraction_engaged: f64,
    /// Average hours per day each server spent in B-mode.
    pub hours_engaged: f64,
    /// Fraction of *measured* server-intervals whose tail violated the
    /// target (starved server-intervals carry no tail evidence and are
    /// excluded from both numerator and denominator).
    pub violation_fraction: f64,
    /// Fleet-wide median sojourn time over the day (ms).
    pub p50_ms: f64,
    /// Fleet-wide 95th-percentile sojourn time over the day (ms).
    pub p95_ms: f64,
    /// Fleet-wide 99th-percentile sojourn time over the day (ms).
    pub p99_ms: f64,
    /// Measured requests across the fleet and day.
    pub requests: usize,
}

impl FleetReport {
    /// The 24-hour batch throughput gain, e.g. 0.05 for +5%.
    pub fn gain(&self) -> f64 {
        self.average_batch_throughput - 1.0
    }
}

/// The fleet simulator. Construction measures the per-server peak rate on
/// the fleet at its colocated baseline operating point (see
/// [`measured_peak_rps`]); [`Fleet::run`] replays a 24-hour day.
#[derive(Debug, Clone)]
pub struct Fleet {
    cfg: FleetConfig,
    peak_rps: f64,
}

impl Fleet {
    /// Builds a fleet, validating the configuration and measuring the
    /// per-server peak sustainable rate (as [`measured_peak_rps`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: FleetConfig) -> Fleet {
        cfg.validate().expect("invalid fleet configuration");
        let peak_rps = measured_peak_rps(&cfg);
        Fleet { cfg, peak_rps }
    }

    /// Builds a fleet around an already-measured per-server peak (from
    /// [`measured_peak_rps`]), skipping the bisection — the peak does not
    /// depend on `cfg.monitor`, so callers that calibrate thresholds first
    /// reuse one measurement for both.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the peak is not positive.
    pub fn with_peak(cfg: FleetConfig, peak_rps: f64) -> Fleet {
        cfg.validate().expect("invalid fleet configuration");
        assert!(peak_rps > 0.0, "peak rate must be positive");
        Fleet { cfg, peak_rps }
    }

    /// The configuration this fleet runs.
    pub fn cfg(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Per-server peak sustainable arrival rate (requests/second), measured
    /// at the colocated baseline operating point; the fleet peak is
    /// `servers` times this.
    pub fn peak_rps(&self) -> f64 {
        self.peak_rps
    }

    /// Runs the fleet simulation single-threaded. Exactly
    /// [`Fleet::run_with_workers`] with one worker — same bits.
    pub fn run(&self) -> FleetReport {
        self.run_with_workers(1)
    }

    /// Runs the fleet simulation with its shards distributed over `workers`
    /// OS threads.
    ///
    /// The shard unit is the rack (a flat fleet is one shard, so extra
    /// workers simply idle). The report is a deterministic function of the
    /// configuration alone: shards simulate from independent
    /// [`rack_seed`]-derived streams and merge in shard-index order through
    /// the canonical reducers, so every worker count — including 1 —
    /// produces a bit-identical [`FleetReport`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_with_workers(&self, workers: usize) -> FleetReport {
        let cfg = &self.cfg;
        let peak_rps = self.peak_rps;
        let plans = shard_plans(cfg);
        let shard_days = parallel_map(plans, workers, |plan| run_shard_day(cfg, peak_rps, plan));
        merge_shard_days(cfg, &shard_days)
    }
}

/// One contiguous shard (rack) of a fleet run: its size, the balancer
/// dispatching inside it, and the seed its RNG streams derive from.
struct ShardPlan {
    servers: usize,
    balancer: LoadBalancer,
    seed: u64,
}

/// The shards of a fleet run, in shard-index (= rack, = server) order.
fn shard_plans(cfg: &FleetConfig) -> Vec<ShardPlan> {
    match cfg.topology {
        FleetTopology::Flat => {
            vec![ShardPlan { servers: cfg.servers, balancer: cfg.balancer, seed: cfg.seed }]
        }
        FleetTopology::Racked(rt) => {
            let per_rack = cfg.servers / rt.racks;
            (0..rt.racks)
                .map(|r| ShardPlan {
                    servers: per_rack,
                    balancer: rt.rack_balancer,
                    seed: rack_seed(cfg.seed, r),
                })
                .collect()
        }
    }
}

/// One shard's partial results for one control interval.
struct ShardInterval {
    engaged: usize,
    measured_servers: usize,
    violations: usize,
    /// Left-to-right sum of the shard's per-server batch speedups — a
    /// per-shard partial for [`det_merge`].
    speedup_sum: f64,
    tail: TailAcc,
}

/// Everything one shard contributes to the run, in shard-local server
/// order (which is global order, shards being contiguous).
struct ShardDay {
    intervals: Vec<ShardInterval>,
    day_tails: Vec<TailAcc>,
    engaged_counts: Vec<usize>,
    starved_counts: Vec<usize>,
    mode_changes: Vec<u64>,
    throttle_events: Vec<u64>,
}

/// Simulates one shard's whole run. Only ever called from inside the
/// `parallel_map` closure of [`Fleet::run_with_workers`]: float
/// accumulation here is shard-sequential by construction, and every
/// cross-shard combination happens in [`merge_shard_days`] through the
/// canonical reducers.
fn run_shard_day(cfg: &FleetConfig, peak_rps: f64, plan: &ShardPlan) -> ShardDay {
    let n = plan.servers;
    let spec = &cfg.service;
    let steps = cfg.total_intervals();
    let metric_percentile = spec.tail_metric.percentile();

    let mut state = DispatchState::for_servers(cfg, plan.seed, n);
    let mut controllers: Vec<ClosedLoopStretch> =
        (0..n).map(|_| ClosedLoopStretch::new(cfg.stretch, cfg.monitor)).collect();

    let mut day_tails: Vec<TailAcc> = (0..n).map(|_| TailAcc::new(&cfg.tails)).collect();
    let mut engaged_counts = vec![0usize; n];
    let mut starved_counts = vec![0usize; n];
    let mut intervals = Vec::with_capacity(steps);

    for t in 0..steps {
        let hour = (t as f64 * cfg.interval_hours) % 24.0;
        let load = cfg.pattern.load_at(hour);
        let rate = (load * n as f64 * peak_rps).max(1e-3);

        // Mode for the interval is whatever each monitor decided from
        // the *previous* interval's measurement (control acts on
        // history, as on real hardware).
        let modes: Vec<_> = controllers.iter().map(|c| c.mode()).collect();
        let slowdowns: Vec<f64> = modes
            .iter()
            .map(|m| spec.slowdown(cfg.table.for_mode(*m).ls_performance.clamp(0.05, 1.0)))
            .collect();
        let engaged = modes.iter().filter(|m| m.is_batch_boost()).count();
        for (s, m) in modes.iter().enumerate() {
            if m.is_batch_boost() {
                engaged_counts[s] += 1;
            }
        }
        let speedup_sum = modes.iter().map(|m| cfg.table.for_mode(*m).batch_speedup).sum::<f64>();

        let (per_server, interval_tail) =
            run_interval(cfg, &mut state, plan.balancer, rate, &slowdowns, t as u64);

        // Every server observes its own tail from its own requests and
        // feeds its monitor through the policy trait — *if* it measured
        // any. A server-interval with zero requests is unmeasured: no
        // tail, no violation, no observation (the controller holds its
        // mode), rather than a fabricated perfect 0 ms tail.
        let mut violations = 0usize;
        let mut measured_servers = 0usize;
        for (s, controller) in controllers.iter_mut().enumerate() {
            for &v in per_server[s].samples() {
                day_tails[s].record(v);
            }
            match per_server[s].percentile(metric_percentile) {
                Some(tail) => {
                    measured_servers += 1;
                    if tail > spec.qos_target_ms {
                        violations += 1;
                    }
                    let _ = controller.on_sample(&QosObservation::tail_latency(
                        tail,
                        spec.qos_target_ms,
                        load,
                    ));
                }
                None => starved_counts[s] += 1,
            }
        }

        intervals.push(ShardInterval {
            engaged,
            measured_servers,
            violations,
            speedup_sum,
            tail: interval_tail,
        });
    }

    ShardDay {
        intervals,
        day_tails,
        engaged_counts,
        starved_counts,
        mode_changes: controllers.iter().map(|c| c.mode_changes()).collect(),
        throttle_events: controllers.iter().map(|c| c.throttle_events()).collect(),
    }
}

/// Folds per-shard results into the fleet report, in shard-index order:
/// integer counters add, float partials go through the canonical reducers
/// ([`det_merge`] across shards, [`det_sum`] across intervals), and tail
/// accumulators merge bit-exactly — so the report never depends on worker
/// count or completion order.
fn merge_shard_days(cfg: &FleetConfig, shard_days: &[ShardDay]) -> FleetReport {
    let n = cfg.servers;
    let steps = cfg.total_intervals();
    let mut intervals = Vec::with_capacity(steps);
    let mut throughputs = Vec::with_capacity(steps);
    let mut engaged_total = 0usize;
    let mut violations_total = 0usize;
    let mut measured_total = 0usize;
    let mut fleet_tail = TailAcc::new(&cfg.tails);
    let mut speedups = Vec::with_capacity(shard_days.len());
    for t in 0..steps {
        let hour = (t as f64 * cfg.interval_hours) % 24.0;
        let load = cfg.pattern.load_at(hour);
        let mut engaged = 0usize;
        let mut measured_servers = 0usize;
        let mut violations = 0usize;
        speedups.clear();
        let mut tail = TailAcc::new(&cfg.tails);
        for sd in shard_days {
            let part = &sd.intervals[t];
            engaged += part.engaged;
            measured_servers += part.measured_servers;
            violations += part.violations;
            speedups.push(part.speedup_sum);
            tail.absorb(&part.tail);
        }
        let batch_throughput = det_merge(&speedups) / n as f64;
        throughputs.push(batch_throughput);
        engaged_total += engaged;
        violations_total += violations;
        measured_total += measured_servers;
        fleet_tail.absorb(&tail);
        intervals.push(FleetIntervalReport {
            hour,
            load,
            engaged_servers: engaged,
            measured_servers,
            p99_ms: tail.percentile(99.0).unwrap_or(0.0),
            batch_throughput,
        });
    }

    let mut servers = Vec::with_capacity(n);
    for sd in shard_days {
        for (s, acc) in sd.day_tails.iter().enumerate() {
            servers.push(ServerSummary {
                engaged_intervals: sd.engaged_counts[s],
                starved_intervals: sd.starved_counts[s],
                p99_ms: acc.percentile(99.0).unwrap_or(0.0),
                requests: acc.len(),
                mode_changes: sd.mode_changes[s],
                throttle_events: sd.throttle_events[s],
            });
        }
    }

    let server_intervals = (n * steps) as f64;
    FleetReport {
        intervals,
        servers,
        average_batch_throughput: det_sum(&throughputs) / steps as f64,
        fraction_engaged: engaged_total as f64 / server_intervals,
        hours_engaged: engaged_total as f64 / n as f64 * cfg.interval_hours / cfg.days as f64,
        violation_fraction: if measured_total == 0 {
            0.0
        } else {
            violations_total as f64 / measured_total as f64
        },
        p50_ms: fleet_tail.percentile(50.0).unwrap_or(0.0),
        p95_ms: fleet_tail.percentile(95.0).unwrap_or(0.0),
        p99_ms: fleet_tail.percentile(99.0).unwrap_or(0.0),
        requests: fleet_tail.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CaseStudy;

    fn quick_fleet(balancer: LoadBalancer) -> FleetConfig {
        CaseStudy::web_search().fleet_config(balancer, FleetScale::quick(7))
    }

    #[test]
    fn fixed_seed_runs_are_bit_identical() {
        let cfg = quick_fleet(LoadBalancer::PowerOfTwoChoices);
        let a = Fleet::new(cfg.clone()).run();
        let b = Fleet::new(cfg).run();
        assert_eq!(a, b, "same seed and config must reproduce the identical report");
        assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    }

    #[test]
    fn server_seeds_are_pairwise_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            assert!(seen.insert(server_seed(42, s)), "server {s} repeats another server's seed");
        }
        // Stable across calls and independent of fleet size by construction.
        assert_eq!(server_seed(42, 3), server_seed(42, 3));
        assert_ne!(server_seed(42, 3), server_seed(43, 3));
    }

    #[test]
    fn engagement_tracks_the_diurnal_trough() {
        let report = Fleet::new(quick_fleet(LoadBalancer::LeastLoaded)).run();
        // Night intervals (deep trough) must be almost fully engaged, the
        // daily peak (almost) fully disengaged. Skip the first two intervals:
        // the controllers start in Baseline and need the hysteresis streak.
        let trough: Vec<f64> = report
            .intervals
            .iter()
            .skip(2)
            .filter(|iv| iv.load < 0.6)
            .map(|iv| iv.engaged_servers as f64 / report.servers.len() as f64)
            .collect();
        let trough_avg = trough.iter().sum::<f64>() / trough.len() as f64;
        assert!(trough_avg > 0.8, "trough engagement {trough_avg:.2} should be near 1");
        let peak: Vec<f64> = report
            .intervals
            .iter()
            .filter(|iv| iv.load > 0.97)
            .map(|iv| iv.engaged_servers as f64 / report.servers.len() as f64)
            .collect();
        let peak_avg = peak.iter().sum::<f64>() / peak.len() as f64;
        assert!(peak_avg < 0.1, "peak engagement {peak_avg:.2} should be near 0");
        assert!(report.gain() > 0.0, "a diurnal day must buy some batch throughput");
    }

    #[test]
    fn every_balancer_produces_a_sane_measured_day() {
        for balancer in LoadBalancer::ALL {
            let report = Fleet::new(quick_fleet(balancer)).run();
            assert_eq!(report.intervals.len(), 96);
            assert_eq!(report.servers.len(), 8);
            assert!(report.requests > 0);
            assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
            assert!(
                report.gain() > 0.0 && report.gain() < 0.11,
                "{balancer}: gain {:.3} outside the plausible band",
                report.gain()
            );
            for s in &report.servers {
                assert!(s.requests > 0, "{balancer}: an idle server got no traffic");
            }
        }
    }

    #[test]
    fn better_balancers_tame_the_tail() {
        // Round-robin ignores queue state, so its fleet-wide p99 must not
        // beat the queue-aware dispatchers.
        let rr = Fleet::new(quick_fleet(LoadBalancer::RoundRobin)).run();
        let ll = Fleet::new(quick_fleet(LoadBalancer::LeastLoaded)).run();
        let p2c = Fleet::new(quick_fleet(LoadBalancer::PowerOfTwoChoices)).run();
        assert!(
            ll.p99_ms <= rr.p99_ms,
            "least-loaded p99 {:.1} must not exceed round-robin {:.1}",
            ll.p99_ms,
            rr.p99_ms
        );
        assert!(
            p2c.p99_ms <= rr.p99_ms * 1.05,
            "power-of-two p99 {:.1} should be near least-loaded, not round-robin {:.1}",
            p2c.p99_ms,
            rr.p99_ms
        );
    }

    #[test]
    fn interval_count_and_engagement_accounting_are_consistent() {
        let report = Fleet::new(quick_fleet(LoadBalancer::LeastLoaded)).run();
        let engaged_total: usize = report.intervals.iter().map(|iv| iv.engaged_servers).sum();
        let per_server_total: usize = report.servers.iter().map(|s| s.engaged_intervals).sum();
        assert_eq!(engaged_total, per_server_total);
        let expected_fraction =
            engaged_total as f64 / (report.intervals.len() * report.servers.len()) as f64;
        assert!((report.fraction_engaged - expected_fraction).abs() < 1e-12);
        assert!((report.hours_engaged - report.fraction_engaged * 24.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid fleet configuration")]
    fn zero_servers_rejected() {
        let mut cfg = quick_fleet(LoadBalancer::RoundRobin);
        cfg.servers = 0;
        let _ = Fleet::new(cfg);
    }

    #[test]
    fn non_divisor_control_interval_rejected() {
        let mut cfg = quick_fleet(LoadBalancer::RoundRobin);
        cfg.interval_hours = 0.9; // 26.67 intervals would overrun the day
        assert!(cfg.validate().is_err());
        cfg.interval_hours = 0.5;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "cannot resolve a tail percentile")]
    fn starved_measurement_budget_rejected() {
        let mut cfg = quick_fleet(LoadBalancer::RoundRobin);
        cfg.requests_per_server = 5;
        cfg.validate().map_err(|e| panic!("invalid fleet configuration: {e}")).unwrap();
    }

    #[test]
    fn calibrated_thresholds_are_ordered_and_in_range() {
        let cfg = quick_fleet(LoadBalancer::RoundRobin);
        match cfg.monitor.policy {
            QosPolicy::TailLatency { engage_below, disengage_above } => {
                assert!(engage_below > 0.0);
                assert!(engage_below < disengage_above);
                assert!(disengage_above <= 1.45);
            }
            other => panic!("calibration must produce a tail-latency policy, got {other:?}"),
        }
    }

    #[test]
    fn fleet_config_canonical_keys_separate_every_knob() {
        let digest = |cfg: &FleetConfig| {
            let mut enc = KeyEncoder::new();
            cfg.encode_key(&mut enc);
            enc.digest()
        };
        let base = quick_fleet(LoadBalancer::LeastLoaded);
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.balancer = LoadBalancer::RoundRobin;
        variants.push(v);
        let mut v = base.clone();
        v.servers += 1;
        variants.push(v);
        let mut v = base.clone();
        v.seed ^= 1;
        variants.push(v);
        let mut v = base.clone();
        v.table.b_mode.batch_speedup += 0.01;
        variants.push(v);
        let digests: Vec<String> = variants.iter().map(digest).collect();
        for (i, a) in digests.iter().enumerate() {
            for (j, b) in digests.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "variants {i} and {j} must have distinct cache identities");
            }
        }
        assert_eq!(digest(&base), digests[0], "identity must be stable");
    }
}
