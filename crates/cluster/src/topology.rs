//! Cluster → rack → server topology (and tail-accumulation policy) for the
//! sharded fleet.
//!
//! The flat fleet dispatches every request through one global
//! [`LoadBalancer`], which makes the whole fleet a single sequential unit:
//! a queue-aware balancer (`LeastLoaded`, `PowerOfTwoChoices`) inspects
//! *every* server's queue for *every* request, so no prefix of the servers
//! can be simulated independently of the rest. [`RackTopology`] restores
//! independence by construction, the way real datacenters do (RackSched's
//! two-layer inter-/intra-rack scheduling): the cluster tier splits the
//! offered load evenly across racks by server count, and the queue-aware
//! balancer runs *inside* each rack only. Racks therefore never exchange
//! state mid-run, which makes them the natural shard unit for
//! [`Fleet::run_with_workers`](crate::Fleet::run_with_workers) — each rack
//! simulates on its own worker thread with its own RNG streams, and the
//! merge is a deterministic shard-index-order fold.
//!
//! [`TailAccumulation`] picks how day- and fleet-level sojourn collections
//! are retained: exact raw samples (the historical behaviour, exact
//! percentiles, memory proportional to request count) or fixed-resolution
//! bins ([`sim_stats::LatencyHistogram`], memory `O(bins)` — required for
//! 10k-server multi-day runs, which would otherwise retain ~10⁸ floats).
//! Both choices are part of a run's cache identity.

use crate::fleet::LoadBalancer;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder};

/// A two-tier cluster → rack topology: `racks` equal racks of
/// `servers / racks` machines each, with `rack_balancer` dispatching inside
/// every rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackTopology {
    /// Number of racks; must divide the fleet's server count evenly.
    pub racks: usize,
    /// Dispatcher spreading a rack's share of the load over its servers.
    pub rack_balancer: LoadBalancer,
}

/// How the fleet's servers are organised for dispatch (and, consequently,
/// how the simulation shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetTopology {
    /// One global balancer over all servers — the historical single-shard
    /// fleet. Exact bit-compatibility with pre-topology runs.
    Flat,
    /// Cluster → rack → server: the cluster tier splits load evenly across
    /// racks, the rack tier load-balances within each rack, and each rack is
    /// one shard of the parallel simulation.
    Racked(RackTopology),
}

impl FleetTopology {
    /// A racked topology (convenience constructor).
    pub fn racked(racks: usize, rack_balancer: LoadBalancer) -> FleetTopology {
        FleetTopology::Racked(RackTopology { racks, rack_balancer })
    }

    /// Number of shards a fleet of `servers` machines simulates as.
    pub fn shards(&self) -> usize {
        match self {
            FleetTopology::Flat => 1,
            FleetTopology::Racked(rt) => rt.racks,
        }
    }

    /// Validates the topology against the fleet's server count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self, servers: usize) -> Result<(), String> {
        match self {
            FleetTopology::Flat => Ok(()),
            FleetTopology::Racked(rt) => {
                if rt.racks == 0 {
                    return Err("a racked topology needs at least one rack".into());
                }
                if rt.racks > servers {
                    return Err(format!(
                        "{} racks cannot be populated from {servers} servers",
                        rt.racks
                    ));
                }
                if !servers.is_multiple_of(rt.racks) {
                    return Err(format!(
                        "{servers} servers do not split evenly over {} racks",
                        rt.racks
                    ));
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for FleetTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetTopology::Flat => f.write_str("flat"),
            FleetTopology::Racked(rt) => {
                write!(f, "{} racks x {}", rt.racks, rt.rack_balancer)
            }
        }
    }
}

impl CanonicalKey for FleetTopology {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            FleetTopology::Flat => {
                enc.tag(0);
            }
            FleetTopology::Racked(rt) => {
                enc.tag(1).usize(rt.racks).field(&rt.rack_balancer);
            }
        }
    }
}

/// How day- and fleet-level sojourn collections are retained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TailAccumulation {
    /// Retain every raw sojourn sample (exact percentiles; memory grows with
    /// the request count — the historical behaviour, fine at test scale).
    Exact,
    /// Fixed-resolution latency bins ([`sim_stats::LatencyHistogram`]):
    /// memory is `O(max_ms / resolution_ms)` regardless of request count,
    /// and percentiles are conservative to within one resolution step.
    Binned {
        /// Bin width in milliseconds.
        resolution_ms: f64,
        /// Upper edge of the regular bins; larger sojourns land in a
        /// catch-all bin reported one resolution step above this.
        max_ms: f64,
    },
}

impl TailAccumulation {
    /// A binned accumulation sized for datacenter-scale service tails:
    /// 2 ms bins up to 2 s (1001 bins, ~8 KiB per accumulator).
    pub fn binned_default() -> TailAccumulation {
        TailAccumulation::Binned { resolution_ms: 2.0, max_ms: 2000.0 }
    }

    /// Validates the accumulation parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TailAccumulation::Exact => Ok(()),
            TailAccumulation::Binned { resolution_ms, max_ms } => {
                if !(resolution_ms.is_finite() && resolution_ms > 0.0) {
                    return Err(format!(
                        "tail bin resolution {resolution_ms} ms must be positive and finite"
                    ));
                }
                if !(max_ms.is_finite() && max_ms >= resolution_ms) {
                    return Err(format!(
                        "tail bin maximum {max_ms} ms must be finite and at least one bin wide"
                    ));
                }
                Ok(())
            }
        }
    }
}

impl CanonicalKey for TailAccumulation {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match *self {
            TailAccumulation::Exact => {
                enc.tag(0);
            }
            TailAccumulation::Binned { resolution_ms, max_ms } => {
                enc.tag(1).f64(resolution_ms).f64(max_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_validation_requires_even_split() {
        assert!(FleetTopology::Flat.validate(1).is_ok());
        let t = FleetTopology::racked(4, LoadBalancer::PowerOfTwoChoices);
        assert!(t.validate(8).is_ok());
        assert!(t.validate(6).is_err(), "6 servers over 4 racks is uneven");
        assert!(t.validate(2).is_err(), "more racks than servers");
        assert!(FleetTopology::racked(0, LoadBalancer::RoundRobin).validate(8).is_err());
    }

    #[test]
    fn shard_counts() {
        assert_eq!(FleetTopology::Flat.shards(), 1);
        assert_eq!(FleetTopology::racked(5, LoadBalancer::LeastLoaded).shards(), 5);
    }

    #[test]
    fn tail_accumulation_validation() {
        assert!(TailAccumulation::Exact.validate().is_ok());
        assert!(TailAccumulation::binned_default().validate().is_ok());
        assert!(TailAccumulation::Binned { resolution_ms: 0.0, max_ms: 10.0 }.validate().is_err());
        assert!(TailAccumulation::Binned { resolution_ms: 4.0, max_ms: 2.0 }.validate().is_err());
        assert!(TailAccumulation::Binned { resolution_ms: f64::NAN, max_ms: 2.0 }
            .validate()
            .is_err());
    }

    #[test]
    fn canonical_keys_separate_topologies_and_tails() {
        let digest = |t: &dyn CanonicalKey| {
            let mut enc = KeyEncoder::new();
            t.encode_key(&mut enc);
            enc.digest()
        };
        let topo: Vec<FleetTopology> = vec![
            FleetTopology::Flat,
            FleetTopology::racked(1, LoadBalancer::LeastLoaded),
            FleetTopology::racked(2, LoadBalancer::LeastLoaded),
            FleetTopology::racked(2, LoadBalancer::PowerOfTwoChoices),
        ];
        let digests: Vec<String> = topo.iter().map(|t| digest(t)).collect();
        for (i, a) in digests.iter().enumerate() {
            for (j, b) in digests.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "topologies {i} and {j} must have distinct identities");
            }
        }
        let tails = [
            TailAccumulation::Exact,
            TailAccumulation::binned_default(),
            TailAccumulation::Binned { resolution_ms: 2.0, max_ms: 1000.0 },
        ];
        let tdig: Vec<String> = tails.iter().map(|t| digest(t)).collect();
        assert_ne!(tdig[0], tdig[1]);
        assert_ne!(tdig[1], tdig[2]);
    }
}
