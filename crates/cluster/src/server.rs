//! Lowering the fleet's per-server performance numbers onto a *measured*
//! M-core × T-thread server.
//!
//! [`crate::Fleet`] consumes a [`PerformanceTable`] — per Stretch mode, the
//! latency-sensitive service's delivered performance and the batch speedup.
//! Historically that table came from the paper's headline numbers or from a
//! single SMT *pair* ([`PerformanceTable::measured`]). This module lowers the
//! generalised server model into the cluster layer instead: a
//! [`MeasuredServer`] is `M` cores × `T` hardware threads under one
//! [`AllocationPolicy`] (which thread lands on which core) with every
//! occupied core running [`stretch::PinnedStretch`] as its per-core
//! colocation policy. Each mode of the table is then a cycle-level
//! [`cpu_sim::ServerScenario`] run over the whole machine, so the fleet's
//! per-server numbers reflect the chosen allocation — isolating, packing or
//! symbiosis-pairing the very threads the paper colocates.
//!
//! [`Fleet::run`] itself is untouched: the lowering only changes where its
//! performance table may come from.
//!
//! [`Fleet::run`]: crate::Fleet::run

use cpu_sim::{
    AllocationPolicy, Placement, Scenario, ServerSpec, ServerThread, SimLength, ThreadSpec,
};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder};
use stretch::orchestrator::{ModePerformance, PerformanceTable};
use stretch::{PinnedStretch, StretchConfig, StretchMode};
use workloads::WorkloadProfile;

/// The workload population of one server: one latency-sensitive service plus
/// the batch jobs packed alongside it, all named from the `workloads`
/// registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerWorkloads {
    /// The latency-sensitive service (e.g. `"web-search"`).
    pub ls: String,
    /// The batch co-runners (e.g. three copies of `"zeusmp"`).
    pub batches: Vec<String>,
}

impl ServerWorkloads {
    /// One LS service plus `batches` batch jobs.
    ///
    /// # Panics
    ///
    /// Panics if no batch workload is named.
    pub fn new(ls: impl Into<String>, batches: Vec<String>) -> ServerWorkloads {
        let batches_vec = batches;
        assert!(!batches_vec.is_empty(), "a server population needs at least one batch workload");
        ServerWorkloads { ls: ls.into(), batches: batches_vec }
    }

    /// The paper's SMT4 family: one LS service and three copies of one batch
    /// workload — the "3 batch + 1 LS" population the allocation figures
    /// compare policies on.
    pub fn smt4_family(ls: impl Into<String>, batch: impl Into<String>) -> ServerWorkloads {
        let batch = batch.into();
        ServerWorkloads::new(ls, vec![batch.clone(), batch.clone(), batch])
    }
}

impl CanonicalKey for ServerWorkloads {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str(&self.ls).list(&self.batches);
    }
}

/// One Stretch mode measured on the whole server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerModeMeasurement {
    /// Where the allocation policy placed each thread (thread 0 is the LS
    /// service, the batch jobs follow in population order).
    pub placement: Placement,
    /// LS delivered performance: colocated UIPC over stand-alone full-core
    /// UIPC.
    pub ls_performance: f64,
    /// Sum of the batch threads' UIPC across all cores.
    pub batch_throughput: f64,
}

/// A server of `M` cores × `T` threads whose per-mode performance is
/// *measured* with the cycle-level model under one allocation policy.
pub struct MeasuredServer {
    cfg: CoreConfig,
    spec: ServerSpec,
    allocation: Box<dyn AllocationPolicy>,
    workloads: ServerWorkloads,
    length: SimLength,
    seed: u64,
}

impl MeasuredServer {
    /// Describes the server to measure.
    pub fn new(
        cfg: CoreConfig,
        spec: ServerSpec,
        allocation: Box<dyn AllocationPolicy>,
        workloads: ServerWorkloads,
        length: SimLength,
        seed: u64,
    ) -> MeasuredServer {
        MeasuredServer { cfg, spec, allocation, workloads, length, seed }
    }

    fn profile(name: &str) -> WorkloadProfile {
        workloads::profile_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"))
    }

    /// Stand-alone full-core UIPC of a workload (the LS reference).
    fn standalone_uipc(&self, name: &str) -> f64 {
        Scenario::standalone(Self::profile(name))
            .config(self.cfg)
            .length(self.length)
            .seed(self.seed)
            .run_thread0()
            .uipc
    }

    /// Runs the whole server under one pinned Stretch mode.
    ///
    /// # Panics
    ///
    /// Panics if a workload name is unknown or the population does not fit
    /// the server.
    pub fn measure_mode(&self, mode: StretchMode) -> ServerModeMeasurement {
        let ls_standalone = self.standalone_uipc(&self.workloads.ls);
        let mut scenario = Scenario::server(self.spec)
            .config(self.cfg)
            .boxed_allocation(self.allocation.clone())
            .colocation(PinnedStretch::new(mode))
            .length(self.length)
            .seed(self.seed);
        let ls_profile = Self::profile(&self.workloads.ls);
        let ls_spec = ThreadSpec {
            name: ls_profile.name.clone(),
            class: ls_profile.class,
            standalone_uipc: Some(ls_standalone),
        };
        scenario = scenario.thread(ServerThread::new(ls_spec, Box::new(ls_profile)));
        for name in &self.workloads.batches {
            let profile = Self::profile(name);
            let spec = ThreadSpec {
                name: profile.name.clone(),
                class: profile.class,
                standalone_uipc: Some(self.standalone_uipc(name)),
            };
            scenario = scenario.thread(ServerThread::new(spec, Box::new(profile)));
        }
        let result = scenario.run();
        let ls_uipc = result.thread_uipc(0).expect("the LS thread ran");
        ServerModeMeasurement {
            batch_throughput: result.batch_throughput(),
            ls_performance: ls_uipc / ls_standalone,
            placement: result.placement,
        }
    }

    /// Measures the fleet's [`PerformanceTable`] on this server: one run per
    /// mode (baseline, B-mode, Q-mode), with batch speedups normalised to
    /// the baseline run — exactly the two axes [`crate::Fleet`] consumes,
    /// now reflecting the server's allocation policy.
    pub fn performance_table(&self, stretch: StretchConfig) -> PerformanceTable {
        let baseline = self.measure_mode(StretchMode::Baseline);
        let mode_perf = |m: &ServerModeMeasurement| ModePerformance {
            ls_performance: m.ls_performance,
            batch_speedup: m.batch_throughput / baseline.batch_throughput,
        };
        let b = self.measure_mode(stretch.low_load_mode());
        let q = self.measure_mode(stretch.high_load_mode());
        PerformanceTable {
            b_mode: mode_perf(&b),
            q_mode: mode_perf(&q),
            baseline: mode_perf(&baseline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::Greedy;

    fn quick_server() -> MeasuredServer {
        MeasuredServer::new(
            CoreConfig::default(),
            ServerSpec::new(2, 2),
            Box::new(Greedy),
            ServerWorkloads::new("web-search", vec!["zeusmp".into(), "gcc".into()]),
            SimLength::quick(),
            11,
        )
    }

    #[test]
    fn measured_table_is_sane_and_baseline_normalised() {
        let table = quick_server().performance_table(StretchConfig::recommended());
        assert!((table.baseline.batch_speedup - 1.0).abs() < 1e-12);
        for perf in [table.baseline, table.b_mode, table.q_mode] {
            assert!(perf.ls_performance > 0.0 && perf.ls_performance <= 1.5);
            assert!(perf.batch_speedup > 0.0);
        }
    }

    #[test]
    fn greedy_isolation_protects_the_ls_service() {
        // With 2 cores × 2 threads and a 1 LS + 2 batch population, Greedy
        // leaves the service alone on its core, so its delivered performance
        // under the baseline mode must be essentially stand-alone.
        let m = quick_server().measure_mode(StretchMode::Baseline);
        assert_eq!(m.placement.cores()[0], vec![0]);
        assert!(
            m.ls_performance > 0.95,
            "an isolated LS service should retain stand-alone performance, got {:.3}",
            m.ls_performance
        );
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = quick_server().measure_mode(StretchMode::Baseline);
        let b = quick_server().measure_mode(StretchMode::Baseline);
        assert_eq!(a.ls_performance.to_bits(), b.ls_performance.to_bits());
        assert_eq!(a.batch_throughput.to_bits(), b.batch_throughput.to_bits());
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn population_keys_are_order_sensitive() {
        let digest = |w: &ServerWorkloads| {
            let mut enc = KeyEncoder::new();
            w.encode_key(&mut enc);
            enc.digest()
        };
        let a = ServerWorkloads::new("web-search", vec!["zeusmp".into(), "gcc".into()]);
        let b = ServerWorkloads::new("web-search", vec!["gcc".into(), "zeusmp".into()]);
        assert_ne!(digest(&a), digest(&b));
        let family = ServerWorkloads::smt4_family("web-search", "zeusmp");
        assert_eq!(family.batches.len(), 3);
    }
}
