//! Cluster-level impact of Stretch (§VI-D, Figure 14) — analytical *and*
//! measured.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The paper closes with two deployment case studies: a Web Search cluster
//! whose load stays below 85% of peak for about 11 hours a day, and a
//! YouTube-like video cluster below 85% for about 17 hours a day. During
//! those hours Stretch's B-mode can be engaged, and the colocated batch
//! jobs run ~11–13% faster; averaged over 24 hours this yields ~5% and ~11%
//! cluster throughput gains respectively.
//!
//! This crate reproduces those numbers twice, by two independent routes:
//!
//! * [`case_study`] — the paper's own *accounting*: hours below the
//!   engagement threshold × B-mode batch speedup
//!   ([`CaseStudy`], the analytical cross-check).
//! * [`fleet`] — a *measured* datacenter run: [`Fleet`] simulates N servers
//!   behind a pluggable [`LoadBalancer`], each running a
//!   [`stretch::ClosedLoopStretch`] mode controller fed by the tail latency
//!   of its own requests, under a diurnal-modulated open-loop arrival
//!   stream. Engagement is decided by measurement and hysteresis, the fleet
//!   reports measured tail percentiles, and the resulting 24-hour batch
//!   gain lands within two percentage points of the accounting
//!   (`tests/fleet.rs` pins this).
//! * [`topology`] — the cluster → rack → server organisation
//!   ([`FleetTopology`], [`RackTopology`]) and tail-retention policy
//!   ([`TailAccumulation`]) that let a fleet scale to 10k servers: racks
//!   dispatch independently, so they shard across worker threads
//!   ([`Fleet::run_with_workers`]) with a bit-exact deterministic merge.
//! * [`diurnal`] — the parametric diurnal load curves of Figure 14 shared
//!   by both routes (shapes from Meisner et al. and Gill et al.).
//! * [`server`] — the lowering of the generalised M-core × T-thread server
//!   model: a [`MeasuredServer`] derives the fleet's per-mode performance
//!   table from cycle-level whole-server runs under an
//!   [`cpu_sim::AllocationPolicy`], instead of a hand-fed table or a lone
//!   SMT pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod diurnal;
pub mod fleet;
pub mod server;
pub mod topology;

pub use case_study::{CaseStudy, CaseStudyReport};
pub use diurnal::{day_steps, DiurnalPattern, LoadSample};
pub use fleet::{
    calibrated_monitor, calibrated_monitor_with_peak, measured_peak_rps, rack_seed, server_seed,
    Fleet, FleetConfig, FleetIntervalReport, FleetReport, FleetScale, LoadBalancer, ServerSummary,
};
pub use server::{MeasuredServer, ServerModeMeasurement, ServerWorkloads};
pub use topology::{FleetTopology, RackTopology, TailAccumulation};
