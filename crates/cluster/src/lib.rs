//! Cluster-level impact model (§VI-D, Figure 14).
//!
//! The paper closes with two deployment case studies: a Web Search cluster
//! whose load stays below 85% of peak for about 11 hours a day, and a
//! YouTube-like video cluster below 85% for about 17 hours a day. During
//! those hours Stretch's B-mode can be engaged, and the colocated batch
//! jobs run ~11–13% faster; averaged over 24 hours this yields ~5% and ~11%
//! cluster throughput gains respectively.
//!
//! * [`diurnal`] — parametric diurnal load curves matching the shapes of
//!   Figure 14 (taken from Meisner et al. and Gill et al.).
//! * [`case_study`] — the throughput accounting that turns "hours below the
//!   engagement threshold" plus "B-mode batch speedup" into a 24-hour
//!   cluster gain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod diurnal;

pub use case_study::{CaseStudy, CaseStudyReport};
pub use diurnal::{DiurnalPattern, LoadSample};
