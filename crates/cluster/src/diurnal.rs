//! Diurnal load patterns (Figure 14).
//!
//! The two curves are parametric reconstructions of the figures the paper
//! reproduces from Meisner et al. (Web Search query rate, \[9\]) and Gill et
//! al. (YouTube edge traffic, \[28\]): smooth day/night cycles normalised to
//! their peak, with the Web Search cluster spending ≈11 hours and the video
//! cluster ≈17 hours of the day below 85% of peak load.

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder};
use std::f64::consts::PI;

/// One sampled point of a diurnal curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSample {
    /// Hour of day, `0.0 ..= 24.0`.
    pub hour: f64,
    /// Load as a fraction of the daily peak, `0.0 ..= 1.0`.
    pub load: f64,
}

/// A parametric diurnal load pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiurnalPattern {
    /// Web Search query rate: a broad daytime plateau peaking in the early
    /// afternoon, with a deep overnight trough (Figure 14a).
    WebSearch,
    /// YouTube-style video traffic: a sharper evening peak around 14:00–20:00
    /// local time with most of the day well below peak (Figure 14b).
    YouTube,
    /// A custom sinusoidal pattern: `base + amplitude * max(0, cos-shaped
    /// bump centred on `peak_hour` with the given `width` in hours)`.
    Custom {
        /// Minimum (overnight) load fraction.
        base: f64,
        /// Peak minus base.
        amplitude: f64,
        /// Hour of day at which the load peaks.
        peak_hour: f64,
        /// Width of the daytime bump in hours.
        width: f64,
    },
}

/// Number of `interval_hours`-sized control intervals in a 24-hour day, as
/// used by both the analytical sampling ([`DiurnalPattern::sample`]) and the
/// fleet simulation — one shared formula, so the two routes always count
/// the same number of intervals. Never returns zero.
pub fn day_steps(interval_hours: f64) -> usize {
    assert!(interval_hours > 0.0, "interval must be positive");
    (24.0 / interval_hours).round().max(1.0) as usize
}

impl DiurnalPattern {
    /// Load (fraction of peak) at a given hour of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is outside `0.0 ..= 24.0`.
    pub fn load_at(&self, hour: f64) -> f64 {
        assert!((0.0..=24.0).contains(&hour), "hour {hour} outside a day");
        // A flat-topped daytime bump: full load within `plateau` hours of the
        // peak, cosine falloff to the overnight base over the next `falloff`
        // hours.
        let bump = |base: f64, amplitude: f64, peak_hour: f64, plateau: f64, falloff: f64| -> f64 {
            // Circular distance from the peak hour.
            let mut d = (hour - peak_hour).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            let shape = if d <= plateau {
                1.0
            } else if d <= plateau + falloff {
                0.5 * (1.0 + (PI * (d - plateau) / falloff).cos())
            } else {
                0.0
            };
            (base + amplitude * shape).min(1.0)
        };
        match *self {
            // Calibrated so ~11 of 24 hours are below 85% of peak.
            DiurnalPattern::WebSearch => bump(0.42, 0.58, 14.0, 4.5, 6.0),
            // Calibrated so ~17 of 24 hours are below 85% of peak.
            DiurnalPattern::YouTube => bump(0.30, 0.70, 15.0, 2.0, 5.0),
            DiurnalPattern::Custom { base, amplitude, peak_hour, width } => {
                bump(base, amplitude, peak_hour, width / 3.0, 2.0 * width / 3.0)
            }
        }
    }

    /// Samples the curve once per `interval_hours` over 24 hours. Always
    /// returns at least one sample (the midnight point), even when the
    /// interval exceeds the day — so callers never divide by zero.
    ///
    /// # Panics
    ///
    /// Panics if `interval_hours` is not positive.
    pub fn sample(&self, interval_hours: f64) -> Vec<LoadSample> {
        let steps = day_steps(interval_hours);
        (0..steps)
            .map(|i| {
                let hour = i as f64 * interval_hours;
                LoadSample { hour, load: self.load_at(hour) }
            })
            .collect()
    }

    /// Hours of the day (out of 24) during which the load is strictly below
    /// `threshold`, estimated on a 5-minute grid.
    pub fn hours_below(&self, threshold: f64) -> f64 {
        let grid = 12 * 24; // 5-minute resolution
        let below =
            (0..grid).filter(|i| self.load_at(*i as f64 * 24.0 / grid as f64) < threshold).count();
        below as f64 * 24.0 / grid as f64
    }
}

impl CanonicalKey for DiurnalPattern {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match *self {
            DiurnalPattern::WebSearch => {
                enc.tag(0);
            }
            DiurnalPattern::YouTube => {
                enc.tag(1);
            }
            DiurnalPattern::Custom { base, amplitude, peak_hour, width } => {
                enc.tag(2).f64(base).f64(amplitude).f64(peak_hour).f64(width);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_normalised_fractions() {
        for pattern in [DiurnalPattern::WebSearch, DiurnalPattern::YouTube] {
            for s in pattern.sample(0.5) {
                assert!((0.0..=1.0).contains(&s.load), "{pattern:?} at {} -> {}", s.hour, s.load);
            }
        }
    }

    #[test]
    fn peaks_reach_full_load() {
        assert!(DiurnalPattern::WebSearch.load_at(14.0) > 0.98);
        assert!(DiurnalPattern::YouTube.load_at(15.0) > 0.98);
    }

    #[test]
    fn web_search_spends_about_11_hours_below_85_percent() {
        let hours = DiurnalPattern::WebSearch.hours_below(0.85);
        assert!((hours - 11.0).abs() < 1.5, "Web Search hours below 85%: {hours:.1}");
    }

    #[test]
    fn youtube_spends_about_17_hours_below_85_percent() {
        let hours = DiurnalPattern::YouTube.hours_below(0.85);
        assert!((hours - 17.0).abs() < 1.5, "YouTube hours below 85%: {hours:.1}");
    }

    #[test]
    fn sampling_interval_controls_resolution() {
        assert_eq!(DiurnalPattern::WebSearch.sample(1.0).len(), 24);
        assert_eq!(DiurnalPattern::WebSearch.sample(0.5).len(), 48);
    }

    #[test]
    fn custom_pattern_follows_its_parameters() {
        let p = DiurnalPattern::Custom { base: 0.2, amplitude: 0.8, peak_hour: 12.0, width: 4.0 };
        assert!(p.load_at(12.0) > 0.95);
        assert!(p.load_at(0.0) < 0.25);
    }

    #[test]
    #[should_panic(expected = "outside a day")]
    fn out_of_range_hour_panics() {
        let _ = DiurnalPattern::WebSearch.load_at(25.0);
    }
}
