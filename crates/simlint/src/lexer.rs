//! A hand-rolled Rust lexer: just enough of the language to analyze it.
//!
//! The build environment is offline-vendored (no `syn`, no `proc-macro2`),
//! so the analyzer carries its own tokenizer. It does **not** parse Rust —
//! it produces a flat significant-token stream with source spans, which is
//! all the rules in [`crate::rules`] need. What it must get exactly right is
//! what *hides* tokens from naive `grep`-style scanning:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`), including doc comments — doctest bodies are comment
//!   text and are deliberately invisible to the rules;
//! * cooked strings with escapes (`"a \" b"`), byte strings (`b"…"`), and
//!   raw strings with arbitrary hash fences (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals versus lifetimes (`'a'` versus `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! * raw identifiers (`r#match`);
//! * float literals versus field/range punctuation (`1.5` versus `tuple.0`
//!   versus `0..10`), including exponents and `f32`/`f64` suffixes.
//!
//! Identifiers appearing inside strings or comments therefore never match an
//! identifier-based rule — `"HashMap"` in an error message is a [`Str`]
//! token, not an [`Ident`].
//!
//! [`Str`]: TokKind::Str
//! [`Ident`]: TokKind::Ident

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `struct`, `r#match`).
    Ident,
    /// An integer literal (`192`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `0.5e-3`, `1f64`, `3.`).
    Float,
    /// A string literal of any flavour (cooked, raw, byte); text excludes
    /// the delimiters.
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`); text includes the leading quote.
    Lifetime,
    /// A single punctuation character (`=`, `!`, `:`, `{`, …). Multi-char
    /// operators are emitted as adjacent single-char tokens.
    Punct,
}

/// One significant token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True when this token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

struct Lexer<'a> {
    src: &'a [char],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, keep: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !keep(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }

    /// Consumes a `//` comment to end of line (the newline stays).
    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a `/* … */` comment, honouring nesting. An unterminated
    /// comment consumes to end of input (the lexer is lenient: it analyzes
    /// code that `rustc` will reject in its own time).
    fn block_comment(&mut self) {
        let mut depth = 1usize;
        self.bump(); // '*'
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a cooked string body after the opening `"`, honouring `\`
    /// escapes. Returns the body text.
    fn cooked_string(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    if let Some(esc) = self.bump() {
                        out.push('\\');
                        out.push(esc);
                    }
                }
                other => out.push(other),
            }
        }
        out
    }

    /// Consumes a raw string body after the `r`/`br` prefix: `#`* `"` … `"`
    /// `#`*. Returns the body text.
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening '"'
        let mut out = String::new();
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote counts only when followed by the fence.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        out.push('"');
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            out.push(c);
        }
        out
    }

    /// Consumes a char literal body after the opening `'` (escape-aware) and
    /// the closing `'`. Returns the body text.
    fn char_literal(&mut self) -> String {
        let mut out = String::new();
        match self.bump() {
            Some('\\') => {
                out.push('\\');
                if let Some(esc) = self.bump() {
                    out.push(esc);
                    if esc == 'u' {
                        // '\u{…}': consume through the closing brace.
                        while let Some(c) = self.bump() {
                            out.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        out
    }

    /// Consumes a number starting at an ASCII digit. Returns (text, kind).
    fn number(&mut self) -> (String, TokKind) {
        let mut text = String::new();
        let mut kind = TokKind::Int;
        // Radix prefixes are always integers.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().expect("digit present"));
            text.push(self.bump().expect("radix char present"));
            text.push_str(&self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_'));
            return (text, TokKind::Int);
        }
        text.push_str(&self.bump_while(|c| c.is_ascii_digit() || c == '_'));
        // A fractional part: '.' not followed by another '.' (range) or an
        // identifier start (method call / field access).
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            let is_fraction =
                !matches!(after, Some(c) if c == '.' || is_ident_start(c)) || after.is_none();
            if is_fraction {
                kind = TokKind::Float;
                text.push('.');
                self.bump();
                text.push_str(&self.bump_while(|c| c.is_ascii_digit() || c == '_'));
            }
        }
        // An exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exponent = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if exponent {
                kind = TokKind::Float;
                text.push(self.bump().expect("exponent marker present"));
                if matches!(self.peek(0), Some('+' | '-')) {
                    text.push(self.bump().expect("exponent sign present"));
                }
                text.push_str(&self.bump_while(|c| c.is_ascii_digit() || c == '_'));
            }
        }
        // A type suffix (`1.0f64`, `7u32`).
        if matches!(self.peek(0), Some(c) if is_ident_start(c)) {
            let suffix = self.bump_while(is_ident_continue);
            if suffix == "f32" || suffix == "f64" {
                kind = TokKind::Float;
            }
            text.push_str(&suffix);
        }
        (text, kind)
    }
}

/// Tokenizes Rust source into its significant tokens (comments and
/// whitespace dropped), with 1-based line/column spans.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut lx = Lexer { src: &chars, pos: 0, line: 1, col: 1 };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let mut push = |kind, text| toks.push(Tok { kind, text, line, col });
        match c {
            _ if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => lx.line_comment(),
            '/' if lx.peek(1) == Some('*') => {
                lx.bump();
                lx.block_comment();
            }
            '"' => {
                lx.bump();
                let body = lx.cooked_string();
                push(TokKind::Str, body);
            }
            '\'' => {
                lx.bump();
                // Distinguish a lifetime from a char literal: '<ident> not
                // terminated by a quote is a lifetime.
                match lx.peek(0) {
                    Some(n) if is_ident_start(n) && lx.peek(1) != Some('\'') => {
                        let name = lx.bump_while(is_ident_continue);
                        // `'a'` arrives here with peek(1) == '\'' handled
                        // above only for single-char bodies; a multi-char
                        // ident followed by a quote ('abc') is not valid
                        // Rust, so treat any trailing quote as a close.
                        if lx.peek(0) == Some('\'') {
                            lx.bump();
                            push(TokKind::Char, name);
                        } else {
                            push(TokKind::Lifetime, format!("'{name}"));
                        }
                    }
                    Some(_) => {
                        let body = lx.char_literal();
                        push(TokKind::Char, body);
                    }
                    None => push(TokKind::Punct, "'".to_string()),
                }
            }
            'r' | 'b' => {
                // Raw / byte literal prefixes, or a plain identifier.
                let one = lx.peek(1);
                let two = lx.peek(2);
                let raw_string_ahead = |at: Option<char>, after: Option<char>| match at {
                    Some('"') => true,
                    Some('#') => matches!(after, Some('"' | '#')),
                    _ => false,
                };
                if c == 'b' && one == Some('\'') {
                    lx.bump();
                    lx.bump();
                    let body = lx.char_literal();
                    push(TokKind::Char, body);
                } else if c == 'b' && one == Some('"') {
                    lx.bump();
                    lx.bump();
                    let body = lx.cooked_string();
                    push(TokKind::Str, body);
                } else if c == 'b' && one == Some('r') && raw_string_ahead(two, lx.peek(3)) {
                    lx.bump();
                    lx.bump();
                    let body = lx.raw_string();
                    push(TokKind::Str, body);
                } else if c == 'r' && raw_string_ahead(one, two) {
                    lx.bump();
                    let body = lx.raw_string();
                    push(TokKind::Str, body);
                } else if c == 'r'
                    && one == Some('#')
                    && matches!(two, Some(t) if is_ident_start(t))
                {
                    // Raw identifier `r#match`.
                    lx.bump();
                    lx.bump();
                    let name = lx.bump_while(is_ident_continue);
                    push(TokKind::Ident, name);
                } else {
                    let name = lx.bump_while(is_ident_continue);
                    push(TokKind::Ident, name);
                }
            }
            _ if is_ident_start(c) => {
                let name = lx.bump_while(is_ident_continue);
                push(TokKind::Ident, name);
            }
            _ if c.is_ascii_digit() => {
                let (text, kind) = lx.number();
                push(kind, text);
            }
            other => {
                lx.bump();
                push(TokKind::Punct, other.to_string());
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_identifiers() {
        let toks = texts("a // HashMap\n/* SystemTime /* nested */ more */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".to_string()), (TokKind::Ident, "b".to_string())]
        );
    }

    #[test]
    fn doc_comments_hide_doctest_code() {
        let toks = tokenize("/// let x = map.unwrap();\n//! Instant::now()\nfn f() {}");
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "Instant"));
        assert!(toks[0].is_ident("fn"));
    }

    #[test]
    fn strings_hide_identifiers_and_handle_escapes() {
        let toks = texts(r#"let s = "HashMap \" still HashMap"; x"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let toks = texts(r###"r#"Instant::now() "quoted" body"# b"bytes" br##"raw bytes"##"###);
        assert_eq!(
            toks,
            vec![
                (TokKind::Str, "Instant::now() \"quoted\" body".to_string()),
                (TokKind::Str, "bytes".to_string()),
                (TokKind::Str, "raw bytes".to_string()),
            ]
        );
    }

    #[test]
    fn chars_and_lifetimes_are_distinguished() {
        let toks =
            texts(r"fn f<'a>(x: &'a str) { let c = 'x'; let q = '\''; let s: &'static str; }");
        let lifetimes: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(chars, vec!["x", "\\'"]);
    }

    #[test]
    fn numbers_classify_ints_and_floats() {
        let toks = texts("192 1.5 0.5e-3 1e9 3. 1f64 7u32 0xFF 1_000 tuple.0 0..10");
        let kinds: Vec<TokKind> = toks.iter().map(|(k, _)| *k).collect();
        use TokKind::*;
        assert_eq!(
            kinds,
            vec![
                Int, Float, Float, Float, Float, Float, Int, Int, Int, // literals
                Ident, Punct, Int, // tuple.0
                Int, Punct, Punct, Int, // 0..10
            ]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let toks = texts("r#match r#fn rx");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "match".to_string()),
                (TokKind::Ident, "fn".to_string()),
                (TokKind::Ident, "rx".to_string()),
            ]
        );
    }

    #[test]
    fn spans_are_one_based_lines_and_columns() {
        let toks = tokenize("ab\n  cd == 1.0");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        let eq = toks.iter().position(|t| t.is_punct('=')).expect("operator present");
        assert_eq!((toks[eq].line, toks[eq].col), (2, 6));
        assert_eq!((toks[eq + 1].line, toks[eq + 1].col), (2, 7));
    }
}
