//! The rule catalog and the per-file scanners.
//!
//! Every rule reports [`Finding`]s with exact `file:line:column` spans taken
//! from the token stream, and every finding can be suppressed — only on the
//! offending line, only with a reason — via
//!
//! ```text
//! ... offending code ...  // simlint: allow(<rule>, "<reason>")
//! ```
//!
//! Suppressed findings stay in the report (with their reason); a directive
//! without a reason does not suppress, and a directive that suppresses
//! nothing is itself a finding ([`ALLOW_HYGIENE`]).
//!
//! Test code (integration tests, benches, and `#[cfg(test)]` items inside
//! library sources) is exempt from the determinism and panic-policy rules:
//! it cannot perturb simulation results, and `unwrap()` in a test *is* the
//! assertion. The hygiene rules ([`LINT_HEADER`], [`CANON_MANIFEST`]) are
//! workspace-level and live in [`crate::manifest`] / [`crate::Workspace`].

use crate::exemptions::{exempt_rules, exemption_for};
use crate::graph::{ModuleGraph, ModulePath};
use crate::lexer::{tokenize, Tok, TokKind};
use crate::report::Finding;

/// Rule id: `HashMap`/`HashSet` in deterministic simulation code.
pub const NONDET_COLLECTIONS: &str = "nondet-collections";
/// Rule id: wall-clock, OS-entropy or environment reads in simulation code.
pub const NONDET_TIME: &str = "nondet-time";
/// Rule id: float `==` / `!=` comparisons.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule id: bare `.unwrap()` / empty `.expect("")` in non-test library code.
pub const PANIC_POLICY: &str = "panic-policy";
/// Rule id: missing crate lint header (`#![forbid(unsafe_code)]`,
/// `#![warn(missing_docs)]`, `[lints] workspace = true`).
pub const LINT_HEADER: &str = "lint-header";
/// Rule id: a `CanonicalKey` type definition drifted from the committed
/// manifest (field added without a conscious canon re-pin).
pub const CANON_MANIFEST: &str = "canon-manifest";
/// Rule id: malformed, unknown-rule or no-op `simlint: allow` directives.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";
/// Rule id: RNG streams must originate from named seed-derivation functions
/// and must not be shared across `parallel_map` shards.
pub const RNG_DISCIPLINE: &str = "rng-discipline";
/// Rule id: float accumulation on a `parallel_map` merge path must go
/// through the canonical reducer in `sim_stats::reduce`.
pub const REDUCTION_ORDER: &str = "reduction-order";
/// Rule id: no `static mut` and no non-test statics with interior
/// mutability in simulation code.
pub const SHARED_STATE: &str = "shared-state";
/// Rule id: line waivers that duplicate a module-scoped exemption.
pub const SCOPED_EXEMPTIONS: &str = "scoped-exemptions";

/// One catalog entry for `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule id accepted by `--rule` and `simlint: allow(...)`.
    pub id: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
    /// Where the rule applies (and its built-in allowlist, if any).
    pub scope: &'static str,
}

/// The full rule catalog, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: NONDET_COLLECTIONS,
        summary: "no std HashMap/HashSet: their iteration order is nondeterministic and must \
                  never reach simulation results; use BTreeMap/BTreeSet or sorted-key iteration",
        scope: "all first-party non-test code; module-scoped exemption: bench::engine (the \
                Engine memo is keyed lookup only)",
    },
    RuleInfo {
        id: NONDET_TIME,
        summary: "no Instant::now/SystemTime/thread_rng/env reads: simulation time comes from \
                  the cycle counter and entropy from seeded SimRng streams",
        scope: "all first-party non-test code; module-scoped exemption: bench::perf (the perf \
                harness measures wall clocks by design); the vendored criterion shim is outside \
                the scan scope",
    },
    RuleInfo {
        id: FLOAT_EQ,
        summary: "no float == / != comparisons (detected against float literals): bit-exact \
                  checks go through f64::to_bits, tolerance checks through an epsilon",
        scope: "all first-party non-test code",
    },
    RuleInfo {
        id: PANIC_POLICY,
        summary: "no bare .unwrap() or empty .expect(\"\") in library code: name the invariant \
                  in an expect message or propagate the error",
        scope: "library sources only (bins, examples, benches and test code exempt)",
    },
    RuleInfo {
        id: LINT_HEADER,
        summary: "every crate's lib.rs carries #![forbid(unsafe_code)] and \
                  #![warn(missing_docs)], and its Cargo.toml opts into the workspace lint table",
        scope: "every first-party crate (vendor shims excluded)",
    },
    RuleInfo {
        id: CANON_MANIFEST,
        summary: "every locally-defined CanonicalKey type matches its struct-field fingerprint \
                  pinned in crates/simlint/canon_manifest.json — a field change forces a \
                  conscious encode_key review and --fix-manifest re-pin",
        scope: "all first-party non-test code",
    },
    RuleInfo {
        id: ALLOW_HYGIENE,
        summary: "simlint: allow directives must name a known rule and actually suppress a \
                  finding on their line",
        scope: "every scanned file",
    },
    RuleInfo {
        id: RNG_DISCIPLINE,
        summary: "every RNG construction must trace to a named seed-derivation function \
                  (server_seed, pair_seed, Scenario::seed), and an RNG bound outside a \
                  parallel_map closure must not be captured by it — shared streams make draw \
                  order depend on worker scheduling",
        scope: "library and binary sources of all first-party crates, non-test code",
    },
    RuleInfo {
        id: REDUCTION_ORDER,
        summary: "float accumulation (+=, additive .fold, float .sum) inside parallel_map merge \
                  functions — or anything they reach through unambiguous calls — must go \
                  through sim_stats::reduce::det_sum/det_merge so the reduction tree is a pure \
                  function of the data, never of thread timing",
        scope: "library and binary sources; module-scoped exemption: stats::reduce (it defines \
                the canonical reducer)",
    },
    RuleInfo {
        id: SHARED_STATE,
        summary: "no `static mut`, and no non-test statics wrapping interior mutability \
                  (RefCell/Cell/Mutex/RwLock/Once*/Lazy*/Atomic*): hidden shared state is a \
                  cross-shard channel the determinism rules cannot see",
        scope: "library and binary sources of all first-party crates, non-test code",
    },
    RuleInfo {
        id: SCOPED_EXEMPTIONS,
        summary: "line waivers must not duplicate a module-scoped exemption: if the module is \
                  already exempt from a rule, a simlint: allow for that rule is stale noise",
        scope: "every scanned file; built-in exemptions: bench::engine (nondet-collections), \
                bench::perf (nondet-time), stats::reduce (reduction-order)",
    },
];

/// Looks up a catalog entry by id.
pub fn rule_by_id(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// What kind of source a file is, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library source under `src/` (rules apply in full).
    Lib,
    /// A binary source (`src/bin/*`, `src/main.rs`): a CLI driver, exempt
    /// from the panic policy.
    Bin,
    /// An example: demo code, exempt from the panic policy.
    Example,
    /// An integration test: exempt from determinism and panic rules.
    Test,
    /// A criterion-style bench: exempt like test code (benches measure wall
    /// clocks by design).
    Bench,
}

/// Classifies a workspace-relative path (`/`-separated) into a [`FileKind`].
pub fn classify(path: &str) -> FileKind {
    if path.contains("/benches/") {
        FileKind::Bench
    } else if path.starts_with("tests/") || path.contains("/tests/") {
        FileKind::Test
    } else if path.starts_with("examples/") || path.contains("/examples/") {
        FileKind::Example
    } else if path.contains("/src/bin/") || path.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// True when `toks[i..]` spells the `::`-separated identifier path `segs`
/// (e.g. `["Instant", "now"]` matches `Instant::now` and `Instant :: now`).
fn match_path(toks: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if k > 0 {
            let sep = toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'));
            if !sep {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]` items: the attribute,
/// any stacked attributes after it, and the full item they gate (brace- or
/// semicolon-terminated, found by token-level brace matching — braces inside
/// strings or comments cannot confuse it).
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attr = toks[i].is_punct('#')
            && match_path(toks, i + 2, &["cfg"])
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        if !attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further stacked attributes.
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            j += 1;
            while let Some(t) = toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Consume the gated item: to the matching close brace of its first
        // brace block, or to a top-level semicolon (e.g. a gated `use`).
        let mut depth = 0usize;
        let mut end_line = start_line;
        while let Some(t) = toks.get(j) {
            end_line = t.line;
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn finding(rule: &'static str, path: &str, tok: &Tok, message: String) -> Finding {
    Finding {
        rule,
        file: path.to_string(),
        line: tok.line,
        column: tok.col,
        message,
        suppressed: None,
    }
}

/// Runs the per-file rules over one source file and returns the raw
/// findings. `path` is the workspace-relative path (used for kind
/// classification and the built-in allowlists). Suppression directives are
/// applied separately, by [`apply_suppressions`], once *all* findings for a
/// file — including the workspace-level ones anchored in it — are known.
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    scan_source_in(path, &ModuleGraph::fallback(path), source)
}

/// [`scan_source`] with an explicit module placement (the workspace pass
/// resolves modules through the real `mod`-declaration graph; the plain
/// entry point uses the path-derived fallback, which coincides for
/// conventional layouts).
pub fn scan_source_in(path: &str, module: &ModulePath, source: &str) -> Vec<Finding> {
    let kind = classify(path);
    let toks = tokenize(source);
    let regions = if kind == FileKind::Lib { test_regions(&toks) } else { Vec::new() };
    // Test-like code cannot perturb simulation results; the panic policy
    // additionally exempts CLI drivers and demo code.
    let det_exempt = matches!(kind, FileKind::Test | FileKind::Bench);
    let panic_exempt = kind != FileKind::Lib;

    let mut out = Vec::new();
    if !det_exempt {
        let skip = |line: u32| in_regions(&regions, line);
        if exemption_for(module, NONDET_COLLECTIONS).is_none() {
            nondet_collections(path, &toks, &skip, &mut out);
        }
        if exemption_for(module, NONDET_TIME).is_none() {
            nondet_time(path, &toks, &skip, &mut out);
        }
        float_eq(path, &toks, &skip, &mut out);
        if !panic_exempt {
            panic_policy(path, &toks, &skip, &mut out);
        }
    }
    out
}

fn nondet_collections(
    path: &str,
    toks: &[Tok],
    skip: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for t in toks {
        if skip(t.line) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(finding(
                NONDET_COLLECTIONS,
                path,
                t,
                format!(
                    "std::collections::{} has nondeterministic iteration order; use \
                     BTreeMap/BTreeSet (or sorted-key iteration) so no result can depend on \
                     hash order",
                    t.text
                ),
            ));
        }
    }
}

fn nondet_time(path: &str, toks: &[Tok], skip: &dyn Fn(u32) -> bool, out: &mut Vec<Finding>) {
    const ENV_READS: &[&str] = &["var", "vars", "var_os", "vars_os", "temp_dir"];
    for (i, t) in toks.iter().enumerate() {
        if skip(t.line) {
            continue;
        }
        let message = if match_path(toks, i, &["Instant", "now"]) {
            Some(
                "Instant::now() reads the wall clock; simulation time must come from the \
                  cycle counter"
                    .to_string(),
            )
        } else if t.is_ident("SystemTime") {
            Some(
                "SystemTime is wall-clock state; simulated timestamps must be derived from \
                  the seeded clock"
                    .to_string(),
            )
        } else if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            Some(format!(
                "{} draws OS entropy; use sim_model::SimRng seeded from the scenario",
                t.text
            ))
        } else if t.is_ident("env") && ENV_READS.iter().any(|m| match_path(toks, i, &["env", m])) {
            let which = &toks[i + 3].text;
            Some(format!(
                "std::env::{which} makes results depend on the process environment; thread \
                 configuration through explicit parameters instead"
            ))
        } else {
            None
        };
        if let Some(message) = message {
            out.push(finding(NONDET_TIME, path, t, message));
        }
    }
}

fn float_eq(path: &str, toks: &[Tok], skip: &dyn Fn(u32) -> bool, out: &mut Vec<Finding>) {
    for i in 1..toks.len().saturating_sub(2) {
        let (a, b) = (&toks[i], &toks[i + 1]);
        let operator = (a.is_punct('=') || a.is_punct('!'))
            && b.is_punct('=')
            && a.line == b.line
            && b.col == a.col + 1;
        if !operator || skip(a.line) {
            continue;
        }
        // `==` also matches at its own second character when followed by
        // another `=`; requiring a non-`=` left neighbour rejects that.
        if toks[i - 1].is_punct('=')
            || toks[i - 1].is_punct('!')
            || toks[i - 1].is_punct('<')
            || toks[i - 1].is_punct('>')
        {
            continue;
        }
        if toks[i - 1].kind == TokKind::Float || toks[i + 2].kind == TokKind::Float {
            let op = format!("{}{}", a.text, b.text);
            out.push(finding(
                FLOAT_EQ,
                path,
                a,
                format!(
                    "float `{op}` comparison; compare via f64::to_bits for bit-exact identity \
                     or an explicit epsilon for tolerance"
                ),
            ));
        }
    }
}

fn panic_policy(path: &str, toks: &[Tok], skip: &dyn Fn(u32) -> bool, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') || skip(toks[i].line) {
            continue;
        }
        let bare_unwrap = toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
        if bare_unwrap {
            out.push(finding(
                PANIC_POLICY,
                path,
                &toks[i + 1],
                "bare .unwrap() in library code; state the invariant with \
                 .expect(\"<invariant>\") or propagate the error"
                    .to_string(),
            ));
            continue;
        }
        let empty_expect = toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Str && t.text.is_empty())
            && toks.get(i + 4).is_some_and(|t| t.is_punct(')'));
        if empty_expect {
            out.push(finding(
                PANIC_POLICY,
                path,
                &toks[i + 1],
                ".expect(\"\") carries no invariant; name the condition that makes the value \
                 present"
                    .to_string(),
            ));
        }
    }
}

/// A parsed `simlint: allow(rule, "reason")` directive.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowDirective {
    /// The rule id named by the directive.
    pub rule: String,
    /// The quoted reason, if one was given.
    pub reason: Option<String>,
}

/// Byte offset of the first `//` that starts a genuine line comment (not
/// inside a string literal, escape-aware). `None` when the line has no
/// comment.
fn code_comment_start(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    while i < b.len() {
        if in_str {
            match b[i] {
                b'\\' => i += 1,
                b'"' => in_str = false,
                _ => {}
            }
        } else if b[i] == b'"' {
            in_str = true;
        } else if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Parses the allow directive on `line`, if any. The directive must sit in a
/// plain `//` comment: `// simlint: allow(<rule>, "<reason>")`. Doc comments
/// (`///`, `//!`) never carry directives — text there is documentation, so
/// rule examples in rustdoc do not count as waivers — and neither do
/// occurrences inside string literals.
pub fn parse_allow(line: &str) -> Option<AllowDirective> {
    let marker = "simlint: allow(";
    let comment = code_comment_start(line)?;
    let tail = &line[comment + 2..];
    if tail.starts_with('/') || tail.starts_with('!') {
        return None;
    }
    let at = tail.find(marker)?;
    let rest = &tail[at + marker.len()..];
    let close = rest.find(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.find(',') {
        Some(comma) => {
            let quoted = inner[comma + 1..].trim();
            let reason = quoted.strip_prefix('"').and_then(|q| q.strip_suffix('"'));
            (inner[..comma].trim(), reason.map(str::to_string))
        }
        None => (inner.trim(), None),
    };
    Some(AllowDirective { rule: rule.to_string(), reason })
}

/// Applies suppression directives to `findings` (all of them anchored in
/// `path`) and appends [`ALLOW_HYGIENE`] findings for directives that are
/// malformed, name an unknown rule, or suppress nothing.
pub fn apply_suppressions(path: &str, source: &str, findings: &mut Vec<Finding>) {
    apply_suppressions_in(path, &ModuleGraph::fallback(path), source, findings);
}

/// [`apply_suppressions`] with an explicit module placement. Directives
/// waiving a rule the module is already exempt from are flagged as
/// [`SCOPED_EXEMPTIONS`] findings instead of being treated as stale
/// [`ALLOW_HYGIENE`] noise — the fix is to delete them, and the message
/// says which exemption makes them redundant.
pub fn apply_suppressions_in(
    path: &str,
    module: &ModulePath,
    source: &str,
    findings: &mut Vec<Finding>,
) {
    let module_exempt = exempt_rules(module);
    for (idx, raw) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let Some(directive) = parse_allow(raw) else { continue };
        let column = code_comment_start(raw)
            .and_then(|c| raw[c..].find("simlint:").map(|o| c + o))
            .unwrap_or(0) as u32
            + 1;
        let anchor = Tok { kind: TokKind::Punct, text: String::new(), line, col: column };
        if let Some(e) = module_exempt.iter().find(|e| e.rule == directive.rule) {
            findings.push(finding(
                SCOPED_EXEMPTIONS,
                path,
                &anchor,
                format!(
                    "allow({}) duplicates the module-scoped exemption on {} ({}); remove the \
                     line waiver",
                    directive.rule,
                    module.display(),
                    e.reason
                ),
            ));
            continue;
        }
        if rule_by_id(&directive.rule).is_none() {
            findings.push(finding(
                ALLOW_HYGIENE,
                path,
                &anchor,
                format!(
                    "allow names unknown rule '{}'; run simlint --list-rules for the catalog",
                    directive.rule
                ),
            ));
            continue;
        }
        let Some(reason) = directive.reason.filter(|r| !r.trim().is_empty()) else {
            findings.push(finding(
                ALLOW_HYGIENE,
                path,
                &anchor,
                format!(
                    "allow({}) carries no reason string; suppressions must say why the rule \
                     does not apply",
                    directive.rule
                ),
            ));
            continue;
        };
        let mut suppressed_any = false;
        for f in findings.iter_mut() {
            if f.line == line && f.rule == directive.rule && f.suppressed.is_none() {
                f.suppressed = Some(reason.clone());
                suppressed_any = true;
            }
        }
        if !suppressed_any {
            findings.push(finding(
                ALLOW_HYGIENE,
                path,
                &anchor,
                format!(
                    "allow({}, ...) suppresses nothing: no {} finding on this line — remove \
                     the stale directive",
                    directive.rule, directive.rule
                ),
            ));
        }
    }
    findings.sort_by(|a, b| (a.line, a.column, a.rule).cmp(&(b.line, b.column, b.rule)));
}

/// Checks one crate's lint header: `#![forbid(unsafe_code)]` and
/// `#![warn(missing_docs)]` in its `lib.rs`, and a `[lints]` table with
/// `workspace = true` in its `Cargo.toml`.
pub fn check_lint_header(
    lib_path: &str,
    lib_source: &str,
    cargo_path: &str,
    cargo_toml: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = tokenize(lib_source);
    let has_inner_attr = |outer: &str, inner: &str| {
        (0..toks.len()).any(|i| {
            toks[i].is_punct('#')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(outer))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 5).is_some_and(|t| t.is_ident(inner))
                && toks.get(i + 6).is_some_and(|t| t.is_punct(')'))
                && toks.get(i + 7).is_some_and(|t| t.is_punct(']'))
        })
    };
    let anchor = Tok { kind: TokKind::Punct, text: String::new(), line: 1, col: 1 };
    for (outer, inner) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
        if !has_inner_attr(outer, inner) {
            out.push(finding(
                LINT_HEADER,
                lib_path,
                &anchor,
                format!(
                    "lib.rs is missing the workspace lint header attribute #![{outer}({inner})]"
                ),
            ));
        }
    }
    if !cargo_opts_into_workspace_lints(cargo_toml) {
        out.push(finding(
            LINT_HEADER,
            cargo_path,
            &anchor,
            "Cargo.toml is missing the `[lints]` table with `workspace = true`".to_string(),
        ));
    }
    out
}

fn cargo_opts_into_workspace_lints(cargo_toml: &str) -> bool {
    let mut in_lints = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.split('#').next().unwrap_or("").trim() == "workspace = true" {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_kinds() {
        assert_eq!(classify("crates/cpu/src/core.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/perf.rs"), FileKind::Bin);
        assert_eq!(classify("crates/simlint/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("tests/golden_parity.rs"), FileKind::Test);
        assert_eq!(classify("crates/cpu/tests/extra.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("crates/bench/benches/figures.rs"), FileKind::Bench);
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = \"}\"; }\n}\nfn after() {}\n";
        let regions = test_regions(&tokenize(src));
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod not_tests { fn f() {} }\n";
        assert!(test_regions(&tokenize(src)).is_empty());
    }

    #[test]
    fn parse_allow_extracts_rule_and_reason() {
        assert_eq!(
            parse_allow("let x = 1; // simlint: allow(nondet-time, \"perf harness\")"),
            Some(AllowDirective {
                rule: "nondet-time".to_string(),
                reason: Some("perf harness".to_string())
            })
        );
        assert_eq!(
            parse_allow("// simlint: allow(float-eq)"),
            Some(AllowDirective { rule: "float-eq".to_string(), reason: None })
        );
        assert_eq!(parse_allow("let y = 2; // no directive here"), None);
        // A directive spelled inside a string literal is not a directive,
        // even when the string itself contains escaped quotes.
        assert_eq!(parse_allow("println!(\"use // simlint: allow(x) to…\")"), None);
        assert_eq!(parse_allow("let s = \"say \\\"hi\\\" // simlint: allow(x)\";"), None);
        // Doc comments carry documentation, not waivers.
        assert_eq!(parse_allow("/// e.g. `// simlint: allow(float-eq, \"x\")`"), None);
        assert_eq!(parse_allow("//! ... // simlint: allow(nondet-time, \"y\")"), None);
    }

    #[test]
    fn lint_header_checks_both_files() {
        let good_lib = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let good_toml = "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n";
        assert!(check_lint_header("l", good_lib, "c", good_toml).is_empty());

        let missing = check_lint_header("l", "//! Docs only.\n", "c", "[package]\nname = \"x\"\n");
        let rules: Vec<&str> = missing.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(missing.len(), 3);
        assert_eq!(rules, vec!["l", "l", "c"]);
    }
}
