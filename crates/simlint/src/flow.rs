//! The cross-file flow rules: `rng-discipline`, `reduction-order`,
//! `shared-state`.
//!
//! These are the three hazards that break sharded determinism (ROADMAP
//! item 1) and that no per-file token rule can see:
//!
//! * an RNG stream shared across worker shards — results then depend on
//!   which worker drew first ([`RNG_DISCIPLINE`]);
//! * an order-dependent float fold in a merge function — `f64` addition is
//!   not associative, so the fold order is part of the result's identity
//!   ([`REDUCTION_ORDER`]);
//! * hidden mutable statics — cross-shard channels invisible to both of the
//!   above ([`SHARED_STATE`]).
//!
//! All three work on the [`crate::parse`] item inventory; `reduction-order`
//! additionally walks the [`crate::graph::CallGraph`] so a float fold
//! hidden two calls below a merge callback is still caught. Findings carry
//! exact spans, and module-scoped exemptions (`crate::exemptions`) are
//! honoured at scan time.
//!
//! [`RNG_DISCIPLINE`]: crate::rules::RNG_DISCIPLINE
//! [`REDUCTION_ORDER`]: crate::rules::REDUCTION_ORDER
//! [`SHARED_STATE`]: crate::rules::SHARED_STATE

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::exemptions::exemption_for;
use crate::graph::{named_calls, CallGraph, FnId, ModuleGraph};
use crate::lexer::{Tok, TokKind};
use crate::parse::{ItemKind, ParsedFile};
use crate::report::Finding;
use crate::rules::{classify, FileKind, REDUCTION_ORDER, RNG_DISCIPLINE, SHARED_STATE};

/// The names of the sanctioned seed-derivation functions: an RNG
/// constructed inside one of these (or fed an argument derived from one) is
/// a disciplined stream.
const SEED_FNS: &[&str] = &["server_seed", "pair_seed", "colocation_seed", "seed"];

/// Type names that mark a binding as an RNG stream.
const RNG_TYPES: &[&str] = &["SimRng", "Rng", "SplitMix", "SplitMix64", "Xoshiro256"];

/// Interior-mutability wrappers that make a `static` shared mutable state.
const INTERIOR_MUT: &[&str] = &[
    "RefCell",
    "Cell",
    "UnsafeCell",
    "Mutex",
    "RwLock",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Lazy",
];

/// The name of the sharded map primitive whose closure argument runs on
/// worker threads (see `stretch_bench::harness::parallel_map`).
const PARALLEL_MAP: &str = "parallel_map";

/// Float accumulation sinks that ARE the canonical reducer — calls to these
/// never need flagging.
const CANONICAL_REDUCERS: &[&str] = &["det_sum", "det_merge", "det_mean"];

/// Runs the three flow rules over the parsed workspace. Returned findings
/// are unsuppressed (directive handling happens later, per file).
pub fn scan(files: &[ParsedFile], mods: &ModuleGraph, graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !matches!(classify(&f.path), FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let module = mods.module_of(&f.path);
        if exemption_for(&module, SHARED_STATE).is_none() {
            shared_state(f, &mut out);
        }
        if exemption_for(&module, RNG_DISCIPLINE).is_none() {
            rng_discipline(f, &mut out);
        }
    }
    reduction_order(files, mods, graph, &mut out);
    out
}

fn finding(rule: &'static str, path: &str, tok: &Tok, message: String) -> Finding {
    Finding {
        rule,
        file: path.to_string(),
        line: tok.line,
        column: tok.col,
        message,
        suppressed: None,
    }
}

// ---------------------------------------------------------------- shared-state

fn shared_state(f: &ParsedFile, out: &mut Vec<Finding>) {
    for item in f.items_of(ItemKind::Static) {
        if item.in_test {
            continue;
        }
        let anchor = &f.toks[item.tokens.start];
        if item.is_mut_static {
            out.push(finding(
                SHARED_STATE,
                &f.path,
                anchor,
                format!(
                    "`static mut {}` is shared mutable state; shards would race on it and \
                     results would depend on scheduling — thread the value through explicit \
                     per-shard parameters",
                    item.name
                ),
            ));
            continue;
        }
        let interior = f.toks[item.tokens.clone()].iter().find(|t| {
            t.kind == TokKind::Ident
                && (INTERIOR_MUT.contains(&t.text.as_str()) || t.text.starts_with("Atomic"))
        });
        if let Some(t) = interior {
            out.push(finding(
                SHARED_STATE,
                &f.path,
                anchor,
                format!(
                    "static `{}` smuggles mutability through {}; a static with interior \
                     mutability is a cross-shard channel invisible to the determinism rules — \
                     pass state explicitly instead",
                    item.name, t.text
                ),
            ));
        }
    }
}

// -------------------------------------------------------------- rng-discipline

/// True when `name` is (or derives from) a sanctioned seed-derivation
/// function name.
fn is_seed_fn(name: &str) -> bool {
    SEED_FNS.contains(&name) || name.ends_with("_seed")
}

/// True when an identifier plausibly carries seed material.
fn is_seedish_ident(t: &Tok) -> bool {
    t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("seed")
}

fn rng_discipline(f: &ParsedFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    // Part A: every RNG construction must trace to a named seed derivation.
    for call in named_calls(f, "new") {
        let i = call.name_tok;
        // Only `SimRng::new(` / `<RngType>::new(` constructions.
        let is_rng_ctor = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && RNG_TYPES.contains(&toks[i - 3].text.as_str());
        if !is_rng_ctor || f.in_test_region(toks[i].line) {
            continue;
        }
        let sanctioned_context =
            f.enclosing_fn(i).is_some_and(|idx| is_seed_fn(&f.items[idx].name));
        let seeded_args =
            toks[call.args.clone()].iter().any(|t| is_seedish_ident(t) || is_seed_fn(&t.text));
        if !sanctioned_context && !seeded_args {
            out.push(finding(
                RNG_DISCIPLINE,
                &f.path,
                &toks[i - 3],
                format!(
                    "{}::new(…) without seed provenance: RNG streams must originate from a \
                     named seed-derivation function (server_seed, pair_seed, Scenario::seed) so \
                     every shard's stream is a pure function of the scenario",
                    toks[i - 3].text
                ),
            ));
        }
    }

    // Part B: an RNG bound outside a parallel_map closure must not be
    // captured by it — the shards would share one stream and the draw order
    // would depend on worker scheduling.
    for call in named_calls(f, PARALLEL_MAP) {
        let Some(closure) = call.closure.clone() else { continue };
        if f.in_test_region(toks[call.name_tok].line) {
            continue;
        }
        let Some(fn_idx) = f.enclosing_fn(call.name_tok) else { continue };
        let item = &f.items[fn_idx];
        let body = item.body.clone().expect("enclosing_fn only returns fns with bodies");
        let mut rng_names: BTreeSet<&str> = BTreeSet::new();
        // `let [mut] name … = … <RngType> …;` bindings before the closure.
        for j in body.start..closure.start {
            if !toks[j].is_ident("let") {
                continue;
            }
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else { continue };
            let stmt_end = stmt_end(toks, k, closure.start);
            if toks[k..stmt_end].iter().any(|t| RNG_TYPES.contains(&t.text.as_str())) {
                rng_names.insert(&name.text);
            }
        }
        // RNG-typed parameters of the enclosing fn.
        for j in item.tokens.start..body.start {
            if toks[j].kind == TokKind::Ident
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
            {
                let until = param_end(toks, j + 2, body.start);
                if toks[j + 2..until].iter().any(|t| RNG_TYPES.contains(&t.text.as_str())) {
                    rng_names.insert(&toks[j].text);
                }
            }
        }
        // First capture of each shared RNG inside the closure is the finding.
        let mut flagged: BTreeSet<&str> = BTreeSet::new();
        for t in &toks[closure.start..closure.end] {
            if t.kind == TokKind::Ident
                && rng_names.contains(t.text.as_str())
                && flagged.insert(&t.text)
            {
                out.push(finding(
                    RNG_DISCIPLINE,
                    &f.path,
                    t,
                    format!(
                        "RNG `{}` is declared outside the parallel_map closure and captured by \
                         it: all shards would share one stream and the draw order would depend \
                         on worker scheduling — fork a per-item stream from a named seed \
                         derivation inside the closure instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Index of the `;` ending the statement starting near `from` (depth-aware
/// for braces), clamped to `limit`.
fn stmt_end(toks: &[Tok], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < limit {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            return j;
        }
        j += 1;
    }
    limit
}

/// Index of the `,` or `)` ending a parameter's type, clamped to `limit`.
fn param_end(toks: &[Tok], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < limit {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(')') {
            if depth <= 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(',') && depth <= 0 {
            return j;
        }
        j += 1;
    }
    limit
}

// -------------------------------------------------------------- reduction-order

/// A function that merges shard results: it calls [`PARALLEL_MAP`], and its
/// body *outside* the closure arguments is the merge region.
struct MergeFn {
    file: usize,
    item: usize,
    /// Token ranges of the shard closures (excluded from the merge region —
    /// code in there runs sequentially per item).
    closures: Vec<Range<usize>>,
}

fn reduction_order(
    files: &[ParsedFile],
    mods: &ModuleGraph,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // 1. Find the merge functions.
    let mut merges: BTreeMap<FnId, MergeFn> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !matches!(classify(&f.path), FileKind::Lib | FileKind::Bin) {
            continue;
        }
        for call in named_calls(f, PARALLEL_MAP) {
            if f.in_test_region(f.toks[call.name_tok].line) {
                continue;
            }
            let Some(item) = f.enclosing_fn(call.name_tok) else { continue };
            let entry = merges.entry((fi, item)).or_insert(MergeFn {
                file: fi,
                item,
                closures: Vec::new(),
            });
            if let Some(c) = call.closure {
                entry.closures.push(c);
            }
        }
    }

    // 2. Direct scan of each merge region.
    let mut flagged_fns: BTreeSet<FnId> = BTreeSet::new();
    for m in merges.values() {
        let f = &files[m.file];
        let body = files[m.file].items[m.item].body.clone().expect("merge fns have bodies");
        flagged_fns.insert((m.file, m.item));
        scan_accumulation(f, body.clone(), &m.closures, None, out);
    }

    // 3. Transitive scan: functions reachable from merge-region call sites.
    let mut seeds: BTreeSet<FnId> = BTreeSet::new();
    for m in merges.values() {
        let f = &files[m.file];
        for call in f.call_sites(m.item) {
            if m.closures.iter().any(|c| c.contains(&call.tok)) {
                continue;
            }
            if let Some(id) = graph.resolve(&call.name) {
                seeds.insert(id);
            }
        }
    }
    for id in graph.reachable(seeds) {
        if !flagged_fns.insert(id) {
            continue;
        }
        let f = &files[id.0];
        if !matches!(classify(&f.path), FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let module = mods.module_of(&f.path);
        if exemption_for(&module, REDUCTION_ORDER).is_some() {
            continue;
        }
        let item = &f.items[id.1];
        if item.in_test {
            continue;
        }
        let Some(body) = item.body.clone() else { continue };
        scan_accumulation(f, body, &[], Some(&item.name), out);
    }

    // Merge fns themselves honour exemptions too (checked late so the
    // flagged_fns bookkeeping above stays simple).
    out.retain(|f| {
        f.rule != REDUCTION_ORDER
            || exemption_for(&mods.module_of(&f.file), REDUCTION_ORDER).is_none()
    });
}

/// Flags order-dependent float accumulation inside `body` (minus the
/// `excluded` closure ranges): float `+=`, `.sum()` with float evidence, and
/// `.fold(…)` whose combiner adds. `via` names the merge-reachable function
/// for the transitive case.
fn scan_accumulation(
    f: &ParsedFile,
    body: Range<usize>,
    excluded: &[Range<usize>],
    via: Option<&str>,
    out: &mut Vec<Finding>,
) {
    let toks = &f.toks;
    let floaty = float_bindings(f, body.clone());
    let skip = |j: usize| excluded.iter().any(|c| c.contains(&j)) || f.in_test_region(toks[j].line);
    let context = |kind: &str| match via {
        Some(name) => {
            format!("{kind} in `{name}`, which is reachable from a parallel_map merge function")
        }
        None => format!("{kind} in a parallel_map merge function"),
    };
    for j in body.start..body.end.min(toks.len()) {
        if skip(j) {
            continue;
        }
        let t = &toks[j];
        // Float `+=`.
        if t.is_punct('+')
            && toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct('=') && n.line == t.line && n.col == t.col + 1)
            && !toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('+'))
            && stmt_has_float_evidence(toks, j, &body, &floaty)
        {
            out.push(finding(
                REDUCTION_ORDER,
                &f.path,
                t,
                format!(
                    "{}: the accumulation order becomes part of the result once shards merge \
                     in completion order — collect the values and reduce them with \
                     sim_stats::reduce::det_sum / det_merge",
                    context("order-dependent float `+=` accumulation")
                ),
            ));
            continue;
        }
        // `.sum()` with float evidence.
        if t.is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.is_ident("sum"))
            && toks.get(j + 2).is_some_and(|n| n.is_punct('('))
            && stmt_has_float_evidence(toks, j, &body, &floaty)
        {
            out.push(finding(
                REDUCTION_ORDER,
                &f.path,
                &toks[j + 1],
                format!(
                    "{}: `.sum()` folds left-to-right over an iterator whose order the merge \
                     does not pin — use sim_stats::reduce::det_sum over a collected slice",
                    context("float `.sum()`")
                ),
            ));
            continue;
        }
        // `.fold(…)` whose combiner contains `+` (min/max folds are
        // order-safe and stay exempt).
        if t.is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.is_ident("fold"))
            && toks.get(j + 2).is_some_and(|n| n.is_punct('('))
        {
            let args_end = match_paren(toks, j + 2);
            let adds = (j + 3..args_end).any(|k| {
                toks[k].is_punct('+') && !toks.get(k + 1).is_some_and(|n| n.is_punct('='))
            });
            if adds && stmt_has_float_evidence(toks, j, &body, &floaty) {
                out.push(finding(
                    REDUCTION_ORDER,
                    &f.path,
                    &toks[j + 1],
                    format!(
                        "{}: an additive `.fold(…)` fixes this call site's association but not \
                         the merge's — route the reduction through sim_stats::reduce::det_sum",
                        context("additive float `.fold`")
                    ),
                ));
            }
        }
    }
}

/// Token index just past the `)` matching the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Names bound with float evidence inside `body`: `let [mut] n` whose
/// statement mentions a float literal, `f64`/`f32`, or an already-float
/// binding.
fn float_bindings(f: &ParsedFile, body: Range<usize>) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut set: BTreeSet<String> = BTreeSet::new();
    // Two passes so `let b = a;` after `let a = 0.0;` is caught.
    for _ in 0..2 {
        for j in body.start..body.end.min(toks.len()) {
            if !toks[j].is_ident("let") {
                continue;
            }
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else { continue };
            let end = stmt_end(toks, k, body.end.min(toks.len()));
            let evidence = toks[k + 1..end.max(k + 1)].iter().any(|t| {
                t.kind == TokKind::Float
                    || t.is_ident("f64")
                    || t.is_ident("f32")
                    || (t.kind == TokKind::Ident && set.contains(&t.text))
            });
            if evidence {
                set.insert(name.text.clone());
            }
        }
    }
    set
}

/// Does the statement containing token `at` show float evidence?
fn stmt_has_float_evidence(
    toks: &[Tok],
    at: usize,
    body: &Range<usize>,
    floaty: &BTreeSet<String>,
) -> bool {
    // Statement extent: back to the previous `;`/`{`, forward to the next
    // depth-0 `;` (clamped to the body).
    let mut start = at;
    while start > body.start {
        let t = &toks[start - 1];
        if t.is_punct(';') || t.is_punct('{') {
            break;
        }
        start -= 1;
    }
    let end = stmt_end(toks, at, body.end.min(toks.len()));
    toks[start..end.max(start)].iter().any(|t| {
        t.kind == TokKind::Float
            || t.is_ident("f64")
            || t.is_ident("f32")
            || (t.kind == TokKind::Ident
                && floaty.contains(&t.text)
                && !CANONICAL_REDUCERS.contains(&t.text.as_str()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CallGraph, ModuleGraph};

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> =
            files.iter().map(|(p, s)| ParsedFile::parse(p, "x", s)).collect();
        let mods = ModuleGraph::build(&parsed);
        let graph = CallGraph::build(&parsed);
        scan(&parsed, &mods, &graph)
    }

    #[test]
    fn static_mut_and_interior_mutability_are_flagged() {
        let hits = run(&[(
            "crates/cpu/src/state.rs",
            "static mut TICKS: u64 = 0;\nstatic CACHE: Mutex<u32> = Mutex::new(0);\nstatic OK: u32 = 7;\n",
        )]);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.rule == SHARED_STATE));
        assert_eq!((hits[0].line, hits[0].column), (1, 1));
        assert_eq!((hits[1].line, hits[1].column), (2, 1));
    }

    #[test]
    fn cfg_test_statics_are_exempt() {
        let hits = run(&[(
            "crates/cpu/src/state.rs",
            "#[cfg(test)]\nmod tests {\n    static NEXT: AtomicU64 = AtomicU64::new(0);\n}\n",
        )]);
        assert!(hits.is_empty());
    }

    #[test]
    fn unseeded_rng_construction_is_flagged_and_seeded_is_not() {
        let src = "fn setup(seed: u64) -> SimRng { SimRng::new(seed) }\n\
                   fn sloppy() -> SimRng { SimRng::new(42) }\n\
                   fn server_seed(x: u64) -> SimRng { SimRng::new(x ^ 7) }\n";
        let hits = run(&[("crates/cluster/src/fleet.rs", src)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RNG_DISCIPLINE);
        assert_eq!((hits[0].line, hits[0].column), (2, 25));
    }

    #[test]
    fn rng_captured_by_parallel_map_closure_is_flagged() {
        let src = "fn merge(seed: u64) {\n    let mut rng = SimRng::new(seed);\n    \
                   let out = parallel_map(items, 4, |i| rng.next_u64() + i);\n}\n";
        let hits = run(&[("crates/bench/src/figures.rs", src)]);
        let rng_hits: Vec<_> = hits.iter().filter(|h| h.rule == RNG_DISCIPLINE).collect();
        assert_eq!(rng_hits.len(), 1);
        assert_eq!((rng_hits[0].line, rng_hits[0].column), (3, 42));
    }

    #[test]
    fn float_accumulation_in_merge_region_is_flagged_but_closure_is_not() {
        let src = "fn merge() -> f64 {\n    let outs = parallel_map(items, 2, |x| {\n        \
                   let mut local = 0.0;\n        local += x;\n        local\n    });\n    \
                   let mut total = 0.0;\n    for o in outs { total += o; }\n    total\n}\n";
        let hits = run(&[("crates/bench/src/figures.rs", src)]);
        let red: Vec<_> = hits.iter().filter(|h| h.rule == REDUCTION_ORDER).collect();
        // Only the merge-region `+=` (line 8), not the shard-local one.
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].line, 8);
    }

    #[test]
    fn transitive_callees_of_merge_fns_are_scanned() {
        let merge = "fn merge() {\n    let outs = parallel_map(items, 2, |x| x);\n    \
                     total_of(&outs);\n}\n";
        let helper =
            "pub fn total_of(xs: &[f64]) -> f64 {\n    xs.iter().map(|x| x * 2.0).sum()\n}\n";
        let hits =
            run(&[("crates/bench/src/figures.rs", merge), ("crates/stats/src/lib.rs", helper)]);
        let red: Vec<_> = hits.iter().filter(|h| h.rule == REDUCTION_ORDER).collect();
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].file, "crates/stats/src/lib.rs");
        assert_eq!(red[0].line, 2);
        assert!(red[0].message.contains("total_of"));
    }

    #[test]
    fn min_max_folds_and_det_sum_calls_are_order_safe() {
        let src = "fn merge(outs: Vec<f64>) -> f64 {\n    \
                   let _m = parallel_map(items, 2, |x| x);\n    \
                   let worst = outs.iter().cloned().fold(f64::MAX, f64::min);\n    \
                   worst + det_sum(&outs)\n}\n";
        let hits = run(&[("crates/bench/src/figures.rs", src)]);
        assert!(hits.iter().all(|h| h.rule != REDUCTION_ORDER), "{hits:?}");
    }

    #[test]
    fn reduce_module_exemption_silences_the_canonical_reducer() {
        let merge = "fn merge() {\n    let _o = parallel_map(items, 2, |x| x);\n    \
                     det_sum(&[1.0]);\n}\n";
        let reduce = "pub fn det_sum(values: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    \
                      for &v in values { acc += v; }\n    acc\n}\n";
        let hits =
            run(&[("crates/bench/src/figures.rs", merge), ("crates/stats/src/reduce.rs", reduce)]);
        assert!(hits.iter().all(|h| h.rule != REDUCTION_ORDER), "{hits:?}");
    }
}
