//! The `simlint` binary: scans the workspace and reports determinism &
//! hygiene findings.
//!
//! ```text
//! simlint [--root <dir>] [--rule <id>]... [--json <out>] [--sarif <out>] [--fix-manifest] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (suppressed findings allowed), 1 unsuppressed
//! findings, 2 usage or I/O error.

use std::process::ExitCode;

use simlint::{RuleFilter, Workspace};

struct Args {
    root: Option<String>,
    rules: Vec<String>,
    json: Option<String>,
    sarif: Option<String>,
    fix_manifest: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        rules: Vec::new(),
        json: None,
        sarif: None,
        fix_manifest: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = Some(it.next().ok_or("--root needs a directory")?),
            "--rule" => args.rules.push(it.next().ok_or("--rule needs a rule id")?),
            "--json" => args.json = Some(it.next().ok_or("--json needs an output path")?),
            "--sarif" => args.sarif = Some(it.next().ok_or("--sarif needs an output path")?),
            "--fix-manifest" => args.fix_manifest = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "simlint — workspace determinism & hygiene analyzer\n\n\
                     USAGE: simlint [--root <dir>] [--rule <id>]... [--json <out>] \
                     [--sarif <out>] [--fix-manifest] [--list-rules]\n\n\
                     Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/I-O error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.list_rules {
        for rule in simlint::rules::RULES {
            println!("{}\n    {}\n    scope: {}\n", rule.id, rule.summary, rule.scope);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let workspace = match &args.root {
        Some(dir) => Workspace::open(dir),
        None => Workspace::discover(),
    }
    .map_err(|e| format!("cannot open workspace: {e}"))?;

    if args.fix_manifest {
        let pinned = workspace.fix_manifest().map_err(|e| format!("fix-manifest: {e}"))?;
        println!(
            "simlint: pinned {pinned} CanonicalKey type fingerprint(s) to {}",
            simlint::MANIFEST_PATH
        );
        return Ok(ExitCode::SUCCESS);
    }

    let filter =
        if args.rules.is_empty() { RuleFilter::all() } else { RuleFilter::only(&args.rules)? };
    let report = workspace.analyze(&filter).map_err(|e| format!("analysis failed: {e}"))?;
    print!("{}", report.human());
    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(&report.to_json())
            .expect("the report JSON tree is finite");
        std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.sarif {
        let text = serde_json::to_string_pretty(&simlint::sarif::to_sarif(&report))
            .expect("the SARIF tree is finite");
        std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if report.unsuppressed().count() > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("simlint: {message}");
            ExitCode::from(2)
        }
    }
}
