//! The workspace module graph and the approximate call graph.
//!
//! Both graphs are built from [`ParsedFile`] inventories only — no name
//! resolution, no type information. They are deliberately *approximate* in
//! ways that are documented, deterministic, and conservative for the rules
//! that consume them:
//!
//! * The **module graph** maps every source file to `(crate key, module
//!   path)` by following `mod m;` declarations from each crate root
//!   (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, …), honouring both the
//!   `m.rs` and `m/mod.rs` layouts. Files no declaration reaches fall back
//!   to a path-derived module path (which coincides with the declared one
//!   for conventional layouts). This is what lets rule exemptions attach to
//!   *modules* instead of hardcoded file paths — move `engine.rs` to
//!   `engine/mod.rs` and its exemption follows.
//! * The **call graph** connects `fn` items through call sites that resolve
//!   to exactly **one** function of that name in the whole workspace.
//!   Ambiguous names (`run`, `new`, `len`, …) create no edges: a missing
//!   edge can at worst miss a finding in code that is already covered by
//!   the token-level rules, while a wrong edge would manufacture false
//!   positives deep inside the simulators. Reachability is a plain BFS over
//!   those edges.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::parse::{ItemKind, ParsedFile};

/// A file's position in the module tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModulePath {
    /// The crate key: the `crates/<key>` directory basename, or `""` for
    /// the root package.
    pub crate_key: String,
    /// Module path segments inside the crate (empty = crate root). Bin,
    /// test, example and bench targets are namespaced under `bin::`,
    /// `tests::`, `examples::`, `benches::`.
    pub segments: Vec<String>,
    /// True when a `mod` declaration chain from a crate root reaches the
    /// file (false = path-derived fallback).
    pub declared: bool,
}

impl ModulePath {
    /// `true` when this path sits at or below `prefix` within `crate_key`.
    pub fn is_within(&self, crate_key: &str, prefix: &[&str]) -> bool {
        self.crate_key == crate_key
            && self.segments.len() >= prefix.len()
            && self.segments.iter().zip(prefix).all(|(a, b)| a == b)
    }

    /// Renders `crate_key::seg::seg` for diagnostics.
    pub fn display(&self) -> String {
        let mut s =
            if self.crate_key.is_empty() { "crate".to_string() } else { self.crate_key.clone() };
        for seg in &self.segments {
            s.push_str("::");
            s.push_str(seg);
        }
        s
    }
}

/// Derives `(crate key, path inside the crate)` from a workspace-relative
/// path: `crates/bench/src/engine.rs` → `("bench", "src/engine.rs")`.
fn split_crate(path: &str) -> (String, &str) {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return (rest[..slash].to_string(), &rest[slash + 1..]);
        }
    }
    (String::new(), path)
}

/// Path-derived fallback module path (also the convention the declared
/// resolution reproduces for standard layouts).
fn fallback_segments(in_crate: &str) -> Vec<String> {
    let (namespace, rest) = if let Some(r) = in_crate.strip_prefix("src/bin/") {
        (Some("bin"), r)
    } else if let Some(r) = in_crate.strip_prefix("src/") {
        (None, r)
    } else if let Some(r) = in_crate.strip_prefix("tests/") {
        (Some("tests"), r)
    } else if let Some(r) = in_crate.strip_prefix("examples/") {
        (Some("examples"), r)
    } else if let Some(r) = in_crate.strip_prefix("benches/") {
        (Some("benches"), r)
    } else {
        (None, in_crate)
    };
    let mut segs: Vec<String> = namespace.map(str::to_string).into_iter().collect();
    let trimmed = rest.strip_suffix(".rs").unwrap_or(rest);
    for part in trimmed.split('/') {
        if part.is_empty() || part == "mod" || part == "lib" || part == "main" {
            continue;
        }
        segs.push(part.to_string());
    }
    segs
}

/// The module graph: file path → [`ModulePath`].
#[derive(Debug, Default)]
pub struct ModuleGraph {
    map: BTreeMap<String, ModulePath>,
}

impl ModuleGraph {
    /// Builds the graph over `files` (workspace-relative paths).
    pub fn build(files: &[ParsedFile]) -> ModuleGraph {
        let paths: BTreeSet<&str> = files.iter().map(|f| f.path.as_str()).collect();
        let by_path: BTreeMap<&str, &ParsedFile> =
            files.iter().map(|f| (f.path.as_str(), f)).collect();
        let mut map: BTreeMap<String, ModulePath> = BTreeMap::new();

        // Seed the queue with every target root. Roots are recognized by
        // path shape; their module path is the namespace prefix alone.
        let mut queue: Vec<(String, String, Vec<String>)> = Vec::new(); // (path, crate, segments)
        for f in files {
            let (crate_key, in_crate) = split_crate(&f.path);
            let is_root = in_crate == "src/lib.rs"
                || in_crate == "src/main.rs"
                || in_crate.starts_with("src/bin/")
                || in_crate.starts_with("tests/")
                || in_crate.starts_with("examples/")
                || in_crate.starts_with("benches/");
            if is_root {
                let segments = if in_crate == "src/lib.rs" || in_crate == "src/main.rs" {
                    Vec::new()
                } else {
                    fallback_segments(in_crate)
                };
                queue.push((f.path.clone(), crate_key, segments));
            }
        }

        while let Some((path, crate_key, segments)) = queue.pop() {
            if map.contains_key(&path) {
                continue;
            }
            map.insert(
                path.clone(),
                ModulePath {
                    crate_key: crate_key.clone(),
                    segments: segments.clone(),
                    declared: true,
                },
            );
            let Some(pf) = by_path.get(path.as_str()) else { continue };
            // Directory that child module files live in.
            let dir = path.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
            let stem = path
                .rsplit_once('/')
                .map(|(_, f)| f)
                .unwrap_or(&path)
                .strip_suffix(".rs")
                .unwrap_or_default();
            let base = if matches!(stem, "lib" | "main" | "mod") {
                dir.to_string()
            } else {
                format!("{dir}/{stem}")
            };
            for m in pf.items_of(ItemKind::Mod).filter(|m| m.body.is_none() && !m.in_test) {
                for candidate in
                    [format!("{base}/{}.rs", m.name), format!("{base}/{}/mod.rs", m.name)]
                {
                    if paths.contains(candidate.as_str()) {
                        let mut child_segs = segments.clone();
                        child_segs.push(m.name.clone());
                        queue.push((candidate, crate_key.clone(), child_segs));
                        break;
                    }
                }
            }
        }

        // Fallback for files no declaration reached.
        for f in files {
            if !map.contains_key(&f.path) {
                map.insert(f.path.clone(), Self::fallback(&f.path));
            }
        }
        ModuleGraph { map }
    }

    /// The path-derived module path used when no declaration chain reaches
    /// a file (also what single-file virtual analyses use).
    pub fn fallback(path: &str) -> ModulePath {
        let (crate_key, in_crate) = split_crate(path);
        ModulePath { crate_key, segments: fallback_segments(in_crate), declared: false }
    }

    /// The module path of `path` (falls back to the path-derived form for
    /// unknown files, so lookups are total).
    pub fn module_of(&self, path: &str) -> ModulePath {
        self.map.get(path).cloned().unwrap_or_else(|| Self::fallback(path))
    }
}

/// A function's identity: `(file index, item index)` into the parsed set.
pub type FnId = (usize, usize);

/// The approximate call graph over every `fn` item with a body.
#[derive(Debug)]
pub struct CallGraph {
    /// `fn` name → ids of every function with that name.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Adjacency: caller id → unique-resolved callee ids (sorted, deduped).
    edges: BTreeMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph over `files`. Only calls whose name resolves to
    /// exactly one workspace `fn` produce edges.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, item) in f.items.iter().enumerate() {
                if item.kind == ItemKind::Fn {
                    by_name.entry(item.name.clone()).or_default().push((fi, ii));
                }
            }
        }
        let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, item) in f.items.iter().enumerate() {
                if item.kind != ItemKind::Fn || item.body.is_none() {
                    continue;
                }
                let mut callees = BTreeSet::new();
                for call in f.call_sites(ii) {
                    if let Some(id) = unique(&by_name, &call.name) {
                        if id != (fi, ii) {
                            callees.insert(id);
                        }
                    }
                }
                edges.insert((fi, ii), callees.into_iter().collect());
            }
        }
        CallGraph { by_name, edges }
    }

    /// The single function named `name`, when the name is unambiguous.
    pub fn resolve(&self, name: &str) -> Option<FnId> {
        unique(&self.by_name, name)
    }

    /// Unique-resolved callees of `caller`.
    pub fn callees(&self, caller: FnId) -> &[FnId] {
        self.edges.get(&caller).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every function reachable from `seeds` through unique-name edges
    /// (includes the seeds themselves).
    pub fn reachable(&self, seeds: impl IntoIterator<Item = FnId>) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: Vec<FnId> = seeds.into_iter().collect();
        while let Some(id) = queue.pop() {
            if !seen.insert(id) {
                continue;
            }
            for &next in self.callees(id) {
                if !seen.contains(&next) {
                    queue.push(next);
                }
            }
        }
        seen
    }
}

fn unique(by_name: &BTreeMap<String, Vec<FnId>>, name: &str) -> Option<FnId> {
    match by_name.get(name).map(Vec::as_slice) {
        Some([only]) => Some(*only),
        _ => None,
    }
}

/// One call to a named function inside a file, with the token range of its
/// argument list and of any closure argument (first `|` through the closing
/// paren) — the shape the `reduction-order` and `rng-discipline` rules need
/// to separate *shard* code (the closure body, sequential per item) from
/// *merge* code (the rest of the enclosing function).
#[derive(Debug, Clone)]
pub struct NamedCall {
    /// Token index of the called name.
    pub name_tok: usize,
    /// Token range of the arguments, excluding the outer parens.
    pub args: Range<usize>,
    /// Token range of the closure argument, when one is present.
    pub closure: Option<Range<usize>>,
}

/// Finds every `name(…)` call in `file` and returns argument/closure
/// extents. Matching is token-level; unbalanced parens end at the stream.
pub fn named_calls(file: &ParsedFile, name: &str) -> Vec<NamedCall> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for j in 0..toks.len() {
        if !toks[j].is_ident(name) || !toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let mut depth = 0i32;
        let mut k = j + 1;
        let mut close = toks.len();
        while k < toks.len() {
            if toks[k].is_punct('(') {
                depth += 1;
            } else if toks[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        let args = (j + 2)..close;
        let closure = toks[args.clone().start..args.end]
            .iter()
            .position(|t| t.is_punct('|'))
            .map(|off| (args.start + off)..close);
        out.push(NamedCall { name_tok: j, args, closure });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::ParsedFile;

    fn file(path: &str, crate_name: &str, src: &str) -> ParsedFile {
        ParsedFile::parse(path, crate_name, src)
    }

    #[test]
    fn module_graph_follows_mod_declarations() {
        let files = vec![
            file("crates/bench/src/lib.rs", "stretch-bench", "mod engine;\nmod perf;\n"),
            file("crates/bench/src/engine.rs", "stretch-bench", "pub fn run_cell() {}\n"),
            file("crates/bench/src/perf.rs", "stretch-bench", "pub fn measure() {}\n"),
        ];
        let g = ModuleGraph::build(&files);
        let engine = g.module_of("crates/bench/src/engine.rs");
        assert_eq!(engine.crate_key, "bench");
        assert_eq!(engine.segments, vec!["engine"]);
        assert!(engine.declared);
        assert_eq!(engine.display(), "bench::engine");
    }

    #[test]
    fn mod_rs_layout_resolves_to_the_same_module() {
        let files = vec![
            file("crates/bench/src/lib.rs", "stretch-bench", "mod engine;\n"),
            file("crates/bench/src/engine/mod.rs", "stretch-bench", "mod memo;\n"),
            file("crates/bench/src/engine/memo.rs", "stretch-bench", "pub fn get() {}\n"),
        ];
        let g = ModuleGraph::build(&files);
        assert_eq!(g.module_of("crates/bench/src/engine/mod.rs").segments, vec!["engine"]);
        let memo = g.module_of("crates/bench/src/engine/memo.rs");
        assert_eq!(memo.segments, vec!["engine", "memo"]);
        assert!(memo.is_within("bench", &["engine"]));
        assert!(!memo.is_within("bench", &["perf"]));
    }

    #[test]
    fn undeclared_files_fall_back_to_path_derivation() {
        let files = vec![file("crates/cpu/src/core.rs", "cpu_sim", "fn f() {}\n")];
        let g = ModuleGraph::build(&files);
        let m = g.module_of("crates/cpu/src/core.rs");
        assert_eq!((m.crate_key.as_str(), m.declared), ("cpu", false));
        assert_eq!(m.segments, vec!["core"]);
        // Bin / test / example targets are namespaced.
        assert_eq!(
            ModuleGraph::fallback("crates/bench/src/bin/perf.rs").segments,
            vec!["bin", "perf"]
        );
        assert_eq!(ModuleGraph::fallback("tests/simlint.rs").segments, vec!["tests", "simlint"]);
        assert_eq!(ModuleGraph::fallback("src/lib.rs").crate_key, "");
    }

    #[test]
    fn call_graph_resolves_unique_names_only() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "a",
                "pub fn alpha() { beta(); run(); }\npub fn run() {}\n",
            ),
            file(
                "crates/b/src/lib.rs",
                "b",
                "pub fn beta() { gamma(); }\npub fn gamma() {}\npub fn run() {}\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let alpha = g.resolve("alpha").expect("alpha is unique");
        // `run` is defined twice → no resolution, no edge.
        assert!(g.resolve("run").is_none());
        let reach = g.reachable([alpha]);
        let names: Vec<&str> =
            reach.iter().map(|&(fi, ii)| files[fi].items[ii].name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn named_calls_report_closure_extents() {
        let f = file(
            "crates/x/src/lib.rs",
            "x",
            "fn m() { let out = parallel_map(items, 4, |x| work(x)); total(&out); }\n",
        );
        let calls = named_calls(&f, "parallel_map");
        assert_eq!(calls.len(), 1);
        let c = &calls[0];
        assert!(f.toks[c.name_tok].is_ident("parallel_map"));
        let closure = c.closure.clone().expect("call has a closure argument");
        assert!(f.toks[closure.start].is_punct('|'));
        // The closure region covers `work` but not `total`.
        let work = f.toks.iter().position(|t| t.is_ident("work")).expect("work in stream");
        let total = f.toks.iter().position(|t| t.is_ident("total")).expect("total in stream");
        assert!(closure.contains(&work));
        assert!(!closure.contains(&total));
    }
}
