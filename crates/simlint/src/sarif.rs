//! SARIF 2.1.0 emission, so GitHub code scanning renders findings inline on
//! pull requests.
//!
//! The document mirrors the schema-2 JSON report exactly — same findings,
//! same canonical (file, line, column, rule) order — just in the [SARIF]
//! shape: one run, `tool.driver.rules` carrying the catalog entries for the
//! enabled rules, one `result` per finding. Line-waived findings are
//! emitted with an `inSource` suppression whose justification is the
//! waiver's reason string, which is how code scanning distinguishes "fixed"
//! from "consciously allowed".
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use serde_json::{Map, Value};

use crate::report::Report;
use crate::rules;

/// The SARIF schema URI GitHub's upload action validates against.
const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

/// Renders `report` as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> Value {
    let rule_ids: Vec<&str> = report.rules.iter().map(String::as_str).collect();
    let driver_rules: Vec<Value> = rule_ids
        .iter()
        .filter_map(|id| rules::rule_by_id(id))
        .map(|r| {
            obj(vec![
                ("id", Value::from(r.id)),
                ("shortDescription", obj(vec![("text", Value::from(r.summary))])),
                (
                    "fullDescription",
                    obj(vec![("text", Value::from(format!("{} (scope: {})", r.summary, r.scope)))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Value> = report
        .findings
        .iter()
        .map(|f| {
            let rule_index =
                rule_ids.iter().position(|id| *id == f.rule).map(|i| Value::from(i as u64));
            let location = obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", Value::from(f.file.as_str()))])),
                    (
                        "region",
                        obj(vec![
                            ("startLine", Value::from(u64::from(f.line))),
                            ("startColumn", Value::from(u64::from(f.column))),
                        ]),
                    ),
                ]),
            )]);
            let mut pairs = vec![
                ("ruleId", Value::from(f.rule)),
                ("level", Value::from("error")),
                ("message", obj(vec![("text", Value::from(f.message.as_str()))])),
                ("locations", Value::Array(vec![location])),
            ];
            if let Some(idx) = rule_index {
                pairs.push(("ruleIndex", idx));
            }
            if let Some(reason) = &f.suppressed {
                pairs.push((
                    "suppressions",
                    Value::Array(vec![obj(vec![
                        ("kind", Value::from("inSource")),
                        ("justification", Value::from(reason.as_str())),
                    ])]),
                ));
            }
            obj(pairs)
        })
        .collect();

    let driver = obj(vec![
        ("name", Value::from("simlint")),
        ("informationUri", Value::from("https://example.invalid/simlint")),
        ("version", Value::from(env!("CARGO_PKG_VERSION"))),
        ("rules", Value::Array(driver_rules)),
    ]);
    let run = obj(vec![
        ("tool", obj(vec![("driver", driver)])),
        ("results", Value::Array(results)),
        (
            "columnKind",
            // Our columns are 1-based character offsets from the lexer.
            Value::from("utf16CodeUnits"),
        ),
    ]);
    obj(vec![
        ("$schema", Value::from(SCHEMA_URI)),
        ("version", Value::from("2.1.0")),
        ("runs", Value::Array(vec![run])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Report};

    fn sample() -> Report {
        let mut r = Report {
            root: ".".to_string(),
            files_scanned: 2,
            rules: vec!["nondet-time".to_string(), "rng-discipline".to_string()],
            findings: vec![
                Finding {
                    rule: "rng-discipline",
                    file: "crates/cluster/src/fleet.rs".to_string(),
                    line: 7,
                    column: 13,
                    message: "unseeded RNG".to_string(),
                    suppressed: None,
                },
                Finding {
                    rule: "nondet-time",
                    file: "crates/bench/src/perf.rs".to_string(),
                    line: 2,
                    column: 4,
                    message: "wall clock".to_string(),
                    suppressed: Some("perf harness".to_string()),
                },
            ],
        };
        r.sort();
        r
    }

    /// `a.b.c` path lookup (the vendored serde_json shim has no `pointer`).
    fn at<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
        let mut cur = v;
        for seg in path {
            cur = match seg.parse::<usize>() {
                Ok(i) => cur.as_array().and_then(|a| a.get(i)).expect("index in bounds"),
                Err(_) => cur.get(seg).expect("key present"),
            };
        }
        cur
    }

    #[test]
    fn sarif_has_one_run_with_rules_and_results() {
        let doc = to_sarif(&sample());
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).expect("runs array");
        assert_eq!(runs.len(), 1);
        let rules = at(&runs[0], &["tool", "driver", "rules"]).as_array().expect("driver rules");
        assert_eq!(rules.len(), 2);
        let results = runs[0].get("results").and_then(Value::as_array).expect("results");
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn results_carry_exact_spans_and_suppressions() {
        let doc = to_sarif(&sample());
        let results = at(&doc, &["runs", "0", "results"]).as_array().expect("results").clone();
        // Canonical order sorts the perf.rs finding first.
        let first = &results[0];
        assert_eq!(first.get("ruleId").and_then(Value::as_str), Some("nondet-time"));
        let region = at(first, &["locations", "0", "physicalLocation", "region"]);
        assert_eq!(region.get("startLine").and_then(Value::as_u64), Some(2));
        assert_eq!(
            at(first, &["suppressions", "0", "justification"]).as_str(),
            Some("perf harness")
        );
        let second = &results[1];
        assert_eq!(second.get("ruleId").and_then(Value::as_str), Some("rng-discipline"));
        let region = at(second, &["locations", "0", "physicalLocation", "region"]);
        assert_eq!(region.get("startColumn").and_then(Value::as_u64), Some(13));
        assert!(second.get("suppressions").is_none());
    }
}
