//! Module-scoped rule exemptions.
//!
//! v1 carried its exemptions as hardcoded path comparisons inside the rule
//! scanners (`path != "crates/bench/src/engine.rs"`). That breaks silently
//! the moment a file moves: rename `engine.rs` to `engine/mod.rs` and the
//! exemption evaporates — or worse, a new file reuses the old path and
//! inherits an exemption it never earned. v2 keys exemptions on the
//! **module graph** instead: an exemption names `(crate key, module-path
//! prefix, rule)` and covers every file the graph places at or below that
//! module, however it is laid out on disk.
//!
//! Each exemption carries its justification; `--list-rules` and the rule
//! catalog surface them. The [`crate::rules::SCOPED_EXEMPTIONS`] hygiene
//! rule flags line-level `simlint: allow` directives that waive a rule the
//! enclosing module is already exempt from — a redundant waiver means the
//! author did not know the scope existed, and stale directives accumulate.

use crate::graph::ModulePath;

/// One built-in module-scoped exemption.
#[derive(Debug, Clone, Copy)]
pub struct Exemption {
    /// The rule this exemption disables.
    pub rule: &'static str,
    /// Crate key (the `crates/<key>` directory basename).
    pub crate_key: &'static str,
    /// Module-path prefix inside the crate; the exemption covers the module
    /// and all its descendants.
    pub modules: &'static [&'static str],
    /// Why the rule does not apply there — surfaced in reports.
    pub reason: &'static str,
}

/// The built-in exemption table. Additions require stating a reason and
/// survive code review like any other policy change.
pub const EXEMPTIONS: &[Exemption] = &[
    Exemption {
        rule: crate::rules::NONDET_COLLECTIONS,
        crate_key: "bench",
        modules: &["engine"],
        reason: "the Engine memo is keyed lookup only; iteration order never reaches results",
    },
    Exemption {
        rule: crate::rules::NONDET_TIME,
        crate_key: "bench",
        modules: &["perf"],
        reason: "the perf harness measures wall clocks by design",
    },
    Exemption {
        rule: crate::rules::REDUCTION_ORDER,
        crate_key: "stats",
        modules: &["reduce"],
        reason: "sim_stats::reduce defines the canonical reducer the rule points everyone at",
    },
];

/// The exemption covering `rule` at `module`, if any.
pub fn exemption_for(module: &ModulePath, rule: &str) -> Option<&'static Exemption> {
    EXEMPTIONS.iter().find(|e| e.rule == rule && module.is_within(e.crate_key, e.modules))
}

/// The rules `module` is exempt from (used by the directive-hygiene check).
pub fn exempt_rules(module: &ModulePath) -> Vec<&'static Exemption> {
    EXEMPTIONS.iter().filter(|e| module.is_within(e.crate_key, e.modules)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ModuleGraph;

    #[test]
    fn exemptions_track_modules_not_paths() {
        // Conventional layout …
        let engine = ModuleGraph::fallback("crates/bench/src/engine.rs");
        assert!(exemption_for(&engine, crate::rules::NONDET_COLLECTIONS).is_some());
        // … the mod.rs layout of the same module …
        let engine_dir = ModuleGraph::fallback("crates/bench/src/engine/mod.rs");
        assert!(exemption_for(&engine_dir, crate::rules::NONDET_COLLECTIONS).is_some());
        // … and submodules underneath it.
        let memo = ModuleGraph::fallback("crates/bench/src/engine/memo.rs");
        assert!(exemption_for(&memo, crate::rules::NONDET_COLLECTIONS).is_some());
        // Other rules and other modules are not covered.
        assert!(exemption_for(&engine, crate::rules::NONDET_TIME).is_none());
        let harness = ModuleGraph::fallback("crates/bench/src/harness.rs");
        assert!(exemption_for(&harness, crate::rules::NONDET_COLLECTIONS).is_none());
    }

    #[test]
    fn reduce_module_is_exempt_from_reduction_order_only() {
        let reduce = ModuleGraph::fallback("crates/stats/src/reduce.rs");
        let rules: Vec<&str> = exempt_rules(&reduce).iter().map(|e| e.rule).collect();
        assert_eq!(rules, vec![crate::rules::REDUCTION_ORDER]);
    }
}
