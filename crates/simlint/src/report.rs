//! Findings and report rendering: human `file:line:col` diagnostics and the
//! machine-readable JSON document consumed by CI.

use serde_json::{Map, Value};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule id (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated file path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub column: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// `Some(reason)` when a `simlint: allow(rule, "reason")` directive on
    /// the offending line suppressed this finding. Suppressed findings stay
    /// in the report so every waiver is visible.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Renders the finding as a single `path:line:col: rule: message` line.
    pub fn human(&self) -> String {
        let mut s =
            format!("{}:{}:{}: {}: {}", self.file, self.line, self.column, self.rule, self.message);
        if let Some(reason) = &self.suppressed {
            s.push_str(&format!(" [allowed: {reason}]"));
        }
        s
    }
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the scan ran against.
    pub root: String,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// The rule ids that were enabled for this run.
    pub rules: Vec<String>,
    /// All findings, suppressed and not, sorted by (file, line, column, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by an allow directive — these fail the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings waived by an allow directive (surfaced, not fatal).
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Sorts findings into the canonical reporting order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.column, a.rule).cmp(&(
                b.file.as_str(),
                b.line,
                b.column,
                b.rule,
            ))
        });
    }

    /// The machine-readable document written by `--json`.
    pub fn to_json(&self) -> Value {
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                let mut m = Map::new();
                m.insert("rule".to_string(), Value::from(f.rule));
                m.insert("file".to_string(), Value::from(f.file.as_str()));
                m.insert("line".to_string(), Value::from(u64::from(f.line)));
                m.insert("column".to_string(), Value::from(u64::from(f.column)));
                m.insert("message".to_string(), Value::from(f.message.as_str()));
                m.insert(
                    "suppressed".to_string(),
                    match &f.suppressed {
                        Some(reason) => Value::from(reason.as_str()),
                        None => Value::Null,
                    },
                );
                Value::Object(m)
            })
            .collect();
        let mut summary = Map::new();
        summary.insert("unsuppressed".to_string(), Value::from(self.unsuppressed().count()));
        summary.insert("suppressed".to_string(), Value::from(self.suppressed().count()));
        let mut root = Map::new();
        // Schema 2: adds the `exemptions` table (the module-scoped built-in
        // waivers, so CI artifacts show *all* policy holes, not just line
        // waivers) — consumers of schema 1 keep working, the fields they
        // read are unchanged.
        root.insert("schema".to_string(), Value::from(2u64));
        root.insert("root".to_string(), Value::from(self.root.as_str()));
        root.insert("files_scanned".to_string(), Value::from(self.files_scanned));
        root.insert(
            "rules".to_string(),
            Value::Array(self.rules.iter().map(|r| Value::from(r.as_str())).collect()),
        );
        let exemptions: Vec<Value> = crate::exemptions::EXEMPTIONS
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("rule".to_string(), Value::from(e.rule));
                m.insert(
                    "module".to_string(),
                    Value::from(format!("{}::{}", e.crate_key, e.modules.join("::"))),
                );
                m.insert("reason".to_string(), Value::from(e.reason));
                Value::Object(m)
            })
            .collect();
        root.insert("exemptions".to_string(), Value::Array(exemptions));
        root.insert("findings".to_string(), Value::Array(findings));
        root.insert("summary".to_string(), Value::Object(summary));
        Value::Object(root)
    }

    /// Renders the human diagnostics plus a one-line summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.human());
            out.push('\n');
        }
        let bad = self.unsuppressed().count();
        let waived = self.suppressed().count();
        out.push_str(&format!(
            "simlint: {} file(s) scanned, {bad} finding(s), {waived} suppression(s)\n",
            self.files_scanned
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: ".".to_string(),
            files_scanned: 2,
            rules: vec!["nondet-time".to_string()],
            findings: vec![
                Finding {
                    rule: "nondet-time",
                    file: "b.rs".to_string(),
                    line: 3,
                    column: 9,
                    message: "wall clock".to_string(),
                    suppressed: None,
                },
                Finding {
                    rule: "nondet-time",
                    file: "a.rs".to_string(),
                    line: 1,
                    column: 1,
                    message: "wall clock".to_string(),
                    suppressed: Some("perf harness".to_string()),
                },
            ],
        }
    }

    #[test]
    fn human_lines_carry_exact_spans() {
        let mut r = sample();
        r.sort();
        let text = r.human();
        assert!(text.starts_with("a.rs:1:1: nondet-time: wall clock [allowed: perf harness]\n"));
        assert!(text.contains("b.rs:3:9: nondet-time: wall clock\n"));
        assert!(text.contains("2 file(s) scanned, 1 finding(s), 1 suppression(s)"));
    }

    #[test]
    fn json_summary_counts_split_by_suppression() {
        let doc = sample().to_json();
        assert_eq!(doc.get("schema").and_then(|v| v.as_u64()), Some(2));
        assert!(doc.get("exemptions").and_then(|v| v.as_array()).is_some_and(|a| !a.is_empty()));
        let summary = doc.get("summary").expect("summary object is always emitted");
        assert_eq!(summary.get("unsuppressed").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(summary.get("suppressed").and_then(|v| v.as_u64()), Some(1));
        let findings = doc.get("findings").and_then(|v| v.as_array()).expect("findings array");
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].get("line").and_then(|v| v.as_u64()), Some(3));
    }
}
