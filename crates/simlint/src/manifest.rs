//! The `canon-manifest` rule: struct-field fingerprints for `CanonicalKey`
//! types.
//!
//! Every type that implements `CanonicalKey` participates in the Engine's
//! content-addressed cache keys: adding a field without extending
//! `encode_key` silently aliases distinct configurations onto one cache
//! cell. This module fingerprints the *definition* of every locally-defined
//! `CanonicalKey` type (the token stream of its `struct`/`enum` item —
//! whitespace- and comment-insensitive, field-change-sensitive) and compares
//! it against the committed manifest at
//! [`MANIFEST_PATH`](crate::MANIFEST_PATH). A drifted fingerprint forces a
//! conscious review: check `encode_key` covers the change, then re-pin with
//! `simlint --fix-manifest`.

use std::collections::BTreeMap;

use crate::lexer::{tokenize, Tok, TokKind};
use crate::report::Finding;
use crate::rules::{classify, test_regions, FileKind, CANON_MANIFEST};

/// 128-bit FNV-1a (the same construction `sim_model::canon` uses for cache
/// keys; duplicated here so the analyzer stays dependency-free).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One source file handed to the inventory pass.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Package name of the owning crate (manifest keys are `crate::Type`).
    pub crate_name: String,
    /// Full file contents.
    pub source: String,
}

/// Where a type definition (or impl) was found, plus its fingerprint.
#[derive(Debug, Clone)]
pub struct TypeRecord {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `struct`/`enum` keyword (or the impl header).
    pub line: u32,
    /// Definition fingerprint (empty for impl records).
    pub fingerprint: String,
}

/// The full inventory of one scan: every local `struct`/`enum` definition
/// and every `impl CanonicalKey for <Type>` site, keyed by `crate::Type`.
#[derive(Debug, Default)]
pub struct Inventory {
    /// `crate::Type` → definition record. Duplicate definitions of one name
    /// within a crate (e.g. a module-local helper) fold into one fingerprint
    /// over all of them, in (file, line) order.
    pub defs: BTreeMap<String, TypeRecord>,
    /// `crate::Type` → first `impl CanonicalKey for` site.
    pub impls: BTreeMap<String, TypeRecord>,
}

/// Scans `files` (test code excluded) and builds the [`Inventory`].
pub fn collect(files: &[SourceFile]) -> Inventory {
    let mut raw_defs: BTreeMap<String, Vec<(String, u32, String)>> = BTreeMap::new();
    let mut inv = Inventory::default();
    for f in files {
        if matches!(classify(&f.path), FileKind::Test | FileKind::Bench) {
            continue;
        }
        let toks = tokenize(&f.source);
        let regions = test_regions(&toks);
        let hidden = |line: u32| regions.iter().any(|&(a, b)| line >= a && line <= b);
        scan_defs(&f.path, &f.crate_name, &toks, &hidden, &mut raw_defs);
        scan_impls(&f.path, &f.crate_name, &toks, &hidden, &mut inv.impls);
    }
    for (key, mut sites) in raw_defs {
        sites.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let joined = sites.iter().map(|s| s.2.as_str()).collect::<Vec<_>>().join("\u{1e}");
        let (file, line, _) = sites.remove(0);
        inv.defs.insert(
            key,
            TypeRecord {
                file,
                line,
                fingerprint: format!("{:032x}", fnv1a_128(joined.as_bytes())),
            },
        );
    }
    inv
}

fn scan_defs(
    path: &str,
    crate_name: &str,
    toks: &[Tok],
    hidden: &dyn Fn(u32) -> bool,
    out: &mut BTreeMap<String, Vec<(String, u32, String)>>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("struct") || t.is_ident("enum")) || hidden(t.line) {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else { continue };
        // Walk to the end of the item: the matching close brace of its body,
        // or a top-level `;` for unit/tuple structs. Token-level matching —
        // braces in strings or comments are already out of the stream.
        let mut depth = 0usize;
        let mut saw_brace = false;
        let mut end = i;
        for (j, tj) in toks.iter().enumerate().skip(i) {
            if tj.is_punct('{') {
                depth += 1;
                saw_brace = true;
            } else if tj.is_punct('}') {
                depth = depth.saturating_sub(1);
                if saw_brace && depth == 0 {
                    end = j;
                    break;
                }
            } else if tj.is_punct(';') && depth == 0 {
                end = j;
                break;
            }
            end = j;
        }
        let text: Vec<&str> = toks[i..=end].iter().map(|x| x.text.as_str()).collect();
        out.entry(format!("{crate_name}::{}", name.text)).or_default().push((
            path.to_string(),
            t.line,
            text.join("\u{1f}"),
        ));
    }
}

fn scan_impls(
    path: &str,
    crate_name: &str,
    toks: &[Tok],
    hidden: &dyn Fn(u32) -> bool,
    out: &mut BTreeMap<String, TypeRecord>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident("CanonicalKey")
            || !toks.get(i + 1).is_some_and(|n| n.is_ident("for"))
            || hidden(t.line)
        {
            continue;
        }
        // The implemented type is the last identifier at angle-bracket depth
        // zero before the impl body: `Foo` in `Foo<'a>`, `Vec` in `Vec<T>`.
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        for tj in toks.iter().skip(i + 2) {
            if tj.is_punct('<') {
                angle += 1;
            } else if tj.is_punct('>') {
                angle -= 1;
            } else if tj.is_punct('{') || tj.is_ident("where") {
                break;
            } else if angle == 0 && tj.kind == TokKind::Ident {
                name = Some(tj.text.clone());
            }
        }
        if let Some(name) = name {
            out.entry(format!("{crate_name}::{name}")).or_insert(TypeRecord {
                file: path.to_string(),
                line: t.line,
                fingerprint: String::new(),
            });
        }
    }
}

/// A committed manifest, parsed: `crate::Type` → (file, fingerprint).
pub type Manifest = BTreeMap<String, (String, String)>;

/// Parses the manifest JSON (`{"schema": 1, "types": {key: {file, fingerprint}}}`).
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let value = serde_json::from_str(text).map_err(|e| format!("invalid manifest JSON: {e}"))?;
    if value.get("schema").and_then(|s| s.as_u64()) != Some(1) {
        return Err("manifest schema version is not 1".to_string());
    }
    let Some(types) = value.get("types").and_then(|t| t.as_object()) else {
        return Err("manifest has no `types` object".to_string());
    };
    let mut out = Manifest::new();
    for (key, entry) in types {
        let file = entry.get("file").and_then(|v| v.as_str()).unwrap_or_default().to_string();
        let fp = entry.get("fingerprint").and_then(|v| v.as_str()).unwrap_or_default().to_string();
        out.insert(key.clone(), (file, fp));
    }
    Ok(out)
}

/// Renders the manifest for the current inventory (the `--fix-manifest`
/// output): every type that both implements `CanonicalKey` and is defined
/// locally, with its current fingerprint.
pub fn render_manifest(inv: &Inventory) -> String {
    use serde_json::Value;
    let mut types = serde_json::Map::new();
    for (key, def) in pinnable(inv) {
        let mut entry = serde_json::Map::new();
        entry.insert("file".to_string(), Value::from(def.file.as_str()));
        entry.insert("fingerprint".to_string(), Value::from(def.fingerprint.as_str()));
        types.insert(key.clone(), Value::Object(entry));
    }
    let mut root = serde_json::Map::new();
    root.insert("schema".to_string(), Value::from(1u64));
    root.insert("types".to_string(), Value::Object(types));
    let mut text = serde_json::to_string_pretty(&Value::Object(root))
        .expect("manifest rendering walks a finite tree of finite values");
    text.push('\n');
    text
}

/// The `crate::Type` keys that can be pinned: implement `CanonicalKey` *and*
/// have a local definition (impls on std/foreign types are out of scope).
fn pinnable(inv: &Inventory) -> impl Iterator<Item = (&String, &TypeRecord)> {
    inv.impls.keys().filter_map(|k| inv.defs.get_key_value(k))
}

/// Compares the inventory against the committed manifest and returns the
/// `canon-manifest` findings. `manifest_text` is `None` when the manifest
/// file does not exist.
pub fn diff(inv: &Inventory, manifest_path: &str, manifest_text: Option<&str>) -> Vec<Finding> {
    let at = |file: &str, line: u32, message: String| Finding {
        rule: CANON_MANIFEST,
        file: file.to_string(),
        line,
        column: 1,
        message,
        suppressed: None,
    };
    let Some(text) = manifest_text else {
        return vec![at(
            manifest_path,
            1,
            "canon manifest is missing; pin the current CanonicalKey fingerprints with \
             simlint --fix-manifest"
                .to_string(),
        )];
    };
    let pinned = match parse_manifest(text) {
        Ok(p) => p,
        Err(e) => return vec![at(manifest_path, 1, e)],
    };
    let mut out = Vec::new();
    let mut live = std::collections::BTreeSet::new();
    for (key, def) in pinnable(inv) {
        live.insert(key.clone());
        match pinned.get(key) {
            None => out.push(at(
                &def.file,
                def.line,
                format!(
                    "{key} implements CanonicalKey but is not pinned in {manifest_path}; \
                     review encode_key, then pin it with simlint --fix-manifest"
                ),
            )),
            Some((_, fp)) if *fp != def.fingerprint => out.push(at(
                &def.file,
                def.line,
                format!(
                    "{key} drifted from its pinned fingerprint (a field or variant changed); \
                     verify encode_key covers the change, then re-pin with simlint \
                     --fix-manifest"
                ),
            )),
            Some(_) => {}
        }
    }
    for key in pinned.keys() {
        if !live.contains(key) {
            out.push(at(
                manifest_path,
                1,
                format!(
                    "stale manifest entry {key}: the type no longer implements CanonicalKey \
                     (or was removed); re-pin with simlint --fix-manifest"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile {
            path: "crates/x/src/lib.rs".to_string(),
            crate_name: "x".to_string(),
            source: src.to_string(),
        }]
    }

    const TYPED: &str = "struct Knob { a: u32, b: f64 }\n\
                         impl CanonicalKey for Knob { fn encode_key(&self, e: &mut KeyEncoder) {} }\n";

    #[test]
    fn collect_finds_defs_and_impls() {
        let inv = collect(&files(TYPED));
        assert!(inv.defs.contains_key("x::Knob"));
        assert!(inv.impls.contains_key("x::Knob"));
        assert_eq!(inv.defs["x::Knob"].line, 1);
        assert_eq!(inv.impls["x::Knob"].line, 2);
    }

    #[test]
    fn fingerprint_ignores_formatting_but_sees_fields() {
        let a = collect(&files("struct K { a: u32, b: f64 }\nimpl CanonicalKey for K {}\n"));
        let b = collect(&files(
            "struct K {\n    // docs move around\n    a: u32,\n    b: f64,\n}\nimpl CanonicalKey for K {}\n",
        ));
        let c =
            collect(&files("struct K { a: u32, b: f64, c: bool }\nimpl CanonicalKey for K {}\n"));
        // Trailing comma is a token-stream difference; compare without it.
        let fp = |inv: &Inventory| inv.defs["x::K"].fingerprint.clone();
        assert_ne!(fp(&a), fp(&c));
        assert_ne!(fp(&b), fp(&c));
    }

    #[test]
    fn generic_impls_resolve_to_the_base_type_name() {
        let inv = collect(&files(
            "struct Wrap<T> { inner: T }\nimpl<T: CanonicalKey> CanonicalKey for Wrap<T> {}\n",
        ));
        assert!(inv.impls.contains_key("x::Wrap"));
    }

    #[test]
    fn diff_reports_missing_drifted_and_stale() {
        let inv = collect(&files(TYPED));
        // No manifest at all.
        let missing = diff(&inv, "m.json", None);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("missing"));

        // Unpinned type.
        let empty = "{\"schema\": 1, \"types\": {}}";
        let unpinned = diff(&inv, "m.json", Some(empty));
        assert_eq!(unpinned.len(), 1);
        assert!(unpinned[0].message.contains("not pinned"));
        assert_eq!(unpinned[0].file, "crates/x/src/lib.rs");
        assert_eq!(unpinned[0].line, 1);

        // Pinned at the current fingerprint: clean; then drifted.
        let pinned = render_manifest(&inv);
        assert!(diff(&inv, "m.json", Some(&pinned)).is_empty());
        let drifted = collect(&files(
            "struct Knob { a: u32, b: f64, extra: bool }\n\
             impl CanonicalKey for Knob { fn encode_key(&self, e: &mut KeyEncoder) {} }\n",
        ));
        let d = diff(&drifted, "m.json", Some(&pinned));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("drifted"));

        // Stale entry: manifest pins a type that no longer has an impl.
        let gone = collect(&files("struct Knob { a: u32, b: f64 }\n"));
        let s = diff(&gone, "m.json", Some(&pinned));
        assert_eq!(s.len(), 1);
        assert!(s[0].message.contains("stale"));
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests {\n    struct Hidden { a: u32 }\n    impl CanonicalKey for Hidden {}\n}\n";
        let inv = collect(&files(src));
        assert!(inv.defs.is_empty());
        assert!(inv.impls.is_empty());
    }
}
