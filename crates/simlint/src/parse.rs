//! A lightweight item-level parser on top of the [`crate::lexer`].
//!
//! The v1 rules were purely token-level: they could see *that* a forbidden
//! identifier appeared, but not *where in the program* — which function owns
//! it, whether it sits inside a closure argument, which module the file
//! defines. The cross-file flow rules (`rng-discipline`, `reduction-order`,
//! `scoped-exemptions` and the module/call graphs in [`crate::graph`]) need
//! that structure, so this module extracts a flat inventory of **items**
//! from the token stream: `fn` (with body extent and call sites), `struct`,
//! `enum`, `static` (with mutability and type/initializer extent), `use`,
//! and `mod` (declaration vs inline body).
//!
//! It is still not a Rust parser — no expressions, no types, no name
//! resolution. It finds item *boundaries* by token-level brace/paren
//! matching (the lexer already removed comments and strings, so nothing can
//! confuse the matcher short of pathological macro bodies) and records
//! spans, which is exactly the granularity the flow rules need. The parser
//! is total: any token stream, including garbage, produces some item list
//! without panicking (the proptest suite in `tests/simlint_prop.rs` holds
//! it to that).

use std::ops::Range;

use crate::lexer::{tokenize, Tok, TokKind};
use crate::rules::test_regions;

/// The classes of item the parser extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free function, method, or trait declaration).
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `static` item (the `mut` flag is in [`Item::is_mut_static`]).
    Static,
    /// A `use` declaration.
    Use,
    /// A `mod` item — declaration (`mod m;`) or inline (`mod m { … }`).
    Mod,
}

/// One extracted item with its token extent.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (`fn name`, `struct Name`, …; `use` items take the
    /// final path segment before any `;`/`{`/`*`).
    pub name: String,
    /// 1-based source line of the introducing keyword.
    pub line: u32,
    /// 1-based column of the introducing keyword.
    pub col: u32,
    /// Token index range of the whole item (keyword through close brace or
    /// semicolon), half-open.
    pub tokens: Range<usize>,
    /// For `Fn` and inline `Mod`: the token index range of the `{ … }` body
    /// including both braces, half-open. `None` for bodyless declarations.
    pub body: Option<Range<usize>>,
    /// Brace depth at the introducing keyword (0 = file top level).
    pub depth: usize,
    /// True when the item starts with `static mut`.
    pub is_mut_static: bool,
    /// True when the item lies inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One approximate call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name: `foo` in `foo(…)`, `Type::foo(…)` and `.foo(…)`.
    pub name: String,
    /// True for `.foo(…)` method-call syntax.
    pub is_method: bool,
    /// Token index of the name.
    pub tok: usize,
}

/// A fully parsed source file: the token stream plus its item inventory.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// The significant-token stream.
    pub toks: Vec<Tok>,
    /// Extracted items, in source order.
    pub items: Vec<Item>,
    /// `#[cfg(test)]` line ranges (1-based, inclusive).
    pub test_regions: Vec<(u32, u32)>,
}

impl ParsedFile {
    /// Parses `source` as the file at `path` in `crate_name`.
    pub fn parse(path: &str, crate_name: &str, source: &str) -> ParsedFile {
        let toks = tokenize(source);
        let regions = test_regions(&toks);
        let items = scan_items(&toks, &regions);
        ParsedFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            toks,
            items,
            test_regions: regions,
        }
    }

    /// The items of a given kind, in source order.
    pub fn items_of(&self, kind: ItemKind) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(move |i| i.kind == kind)
    }

    /// The `fn` item (by index into `items`) whose body most tightly
    /// encloses token index `tok`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, i)| {
                i.kind == ItemKind::Fn
                    && i.body.as_ref().is_some_and(|b| b.start <= tok && tok < b.end)
            })
            // The tightest enclosure is the one whose body starts last.
            .max_by_key(|(_, i)| i.body.as_ref().map(|b| b.start).unwrap_or(0))
            .map(|(idx, _)| idx)
    }

    /// Approximate call sites inside the body of `items[fn_idx]`: every
    /// `name(…)` and `.name(…)` with a non-keyword name. The defining
    /// `fn name(` itself and nested `fn` definitions' names are excluded;
    /// calls inside nested closures are included (the flow rules carve out
    /// closure regions themselves when they need to).
    pub fn call_sites(&self, fn_idx: usize) -> Vec<CallSite> {
        let Some(body) = self.items[fn_idx].body.clone() else { return Vec::new() };
        let mut out = Vec::new();
        for j in body.start..body.end {
            let t = &self.toks[j];
            if t.kind != TokKind::Ident
                || is_keyword(&t.text)
                || !self.toks.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // `fn name(` introduces a nested definition, not a call.
            if j > 0 && self.toks[j - 1].is_ident("fn") {
                continue;
            }
            let is_method = j > 0 && self.toks[j - 1].is_punct('.');
            out.push(CallSite { name: t.text.clone(), is_method, tok: j });
        }
        out
    }

    /// True when 1-based `line` falls in a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Words that look like calls but introduce control flow or bindings.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "mod"
            | "use"
            | "pub"
            | "where"
            | "as"
            | "in"
            | "static"
            | "const"
            | "unsafe"
            | "dyn"
    )
}

/// Finds the token index just past the matching `}` for the `{` at `open`
/// (which must be a `{`). Unbalanced input ends at the stream end — the
/// parser is lenient, like the lexer.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Scans forward from `start` to the end of a `;`-terminated item, tracking
/// brace depth so `;` inside an initializer block does not end it early.
/// Returns the index just past the terminating `;` (or the stream end).
fn match_semi(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            if depth == 0 {
                // A stray close brace ends the surrounding block; the item
                // is malformed — stop before it.
                return j;
            }
            depth -= 1;
        } else if toks[j].is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    toks.len()
}

/// Finds the start of a `fn` item's body: the first `{` at zero
/// paren/bracket/angle depth after the signature, or the terminating `;`
/// for a bodyless declaration. Returns `(end_of_item, body_range)`.
fn fn_extent(toks: &[Tok], kw: usize) -> (usize, Option<Range<usize>>) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut j = kw + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` is an arrow, not an angle close.
            if !(j > 0 && toks[j - 1].is_punct('-')) {
                angle = (angle - 1).max(0);
            }
        } else if t.is_punct('{') && paren <= 0 && bracket <= 0 && angle <= 0 {
            let end = match_brace(toks, j);
            return (end, Some(j..end));
        } else if t.is_punct(';') && paren <= 0 && bracket <= 0 {
            return (j + 1, None);
        }
        j += 1;
    }
    (toks.len(), None)
}

fn scan_items(toks: &[Tok], regions: &[(u32, u32)]) -> Vec<Item> {
    let in_test = |line: u32| regions.iter().any(|&(a, b)| line >= a && line <= b);
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let make = |kind, name: &str, tokens: Range<usize>, body, is_mut| Item {
            kind,
            name: name.to_string(),
            line: t.line,
            col: t.col,
            tokens,
            body,
            depth,
            is_mut_static: is_mut,
            in_test: in_test(t.line),
        };
        match t.text.as_str() {
            "fn" => {
                // `fn` as a function-pointer type has no following ident.
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let (end, body) = fn_extent(toks, i);
                    items.push(make(ItemKind::Fn, &name.text, i..end, body, false));
                }
                i += 1;
            }
            "struct" | "enum" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let kind = if t.text == "struct" { ItemKind::Struct } else { ItemKind::Enum };
                    // To the matching close brace of the first brace block,
                    // or a top-level `;` (unit / tuple structs).
                    let mut j = i + 2;
                    let mut end = toks.len();
                    while j < toks.len() {
                        if toks[j].is_punct('{') {
                            end = match_brace(toks, j);
                            break;
                        }
                        if toks[j].is_punct(';') {
                            end = j + 1;
                            break;
                        }
                        j += 1;
                    }
                    items.push(make(kind, &name.text, i..end, None, false));
                }
                i += 1;
            }
            "static" => {
                let is_mut = toks.get(i + 1).is_some_and(|n| n.is_ident("mut"));
                let name_at = if is_mut { i + 2 } else { i + 1 };
                if let Some(name) = toks.get(name_at).filter(|n| n.kind == TokKind::Ident) {
                    // `&'static` / `dyn` never reach here: `static` as a
                    // lifetime is a Lifetime token, not an Ident.
                    let end = match_semi(toks, i);
                    items.push(make(ItemKind::Static, &name.text, i..end, None, is_mut));
                }
                i += 1;
            }
            "use" => {
                let end = match_semi(toks, i);
                // Name the last identifier before the terminator (good
                // enough for counting and display).
                let name = toks[i..end]
                    .iter()
                    .rev()
                    .find(|x| x.kind == TokKind::Ident && x.text != "use")
                    .map(|x| x.text.clone())
                    .unwrap_or_default();
                items.push(make(ItemKind::Use, &name, i..end, None, false));
                i = end.max(i + 1);
            }
            "mod" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    match toks.get(i + 2) {
                        Some(n) if n.is_punct(';') => {
                            items.push(make(ItemKind::Mod, &name.text, i..i + 3, None, false));
                        }
                        Some(n) if n.is_punct('{') => {
                            let end = match_brace(toks, i + 2);
                            items.push(make(
                                ItemKind::Mod,
                                &name.text,
                                i..end,
                                Some(i + 2..end),
                                false,
                            ));
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/x/src/lib.rs", "x", src)
    }

    #[test]
    fn extracts_fns_with_bodies_and_spans() {
        let p = parse("pub fn alpha(a: u32) -> u32 { a + 1 }\nfn beta();\n");
        let fns: Vec<&Item> = p.items_of(ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!((fns[0].name.as_str(), fns[0].line), ("alpha", 1));
        assert!(fns[0].body.is_some());
        assert_eq!((fns[1].name.as_str(), fns[1].line), ("beta", 2));
        assert!(fns[1].body.is_none());
    }

    #[test]
    fn generic_signatures_do_not_confuse_body_detection() {
        let p = parse(
            "fn gen<T: Fn(u32) -> Vec<u8>>(f: T, xs: [u8; 4]) -> impl Iterator<Item = u8> \
             where T: Clone { xs.into_iter() }\n",
        );
        let f = p.items_of(ItemKind::Fn).next().expect("one fn parsed");
        assert_eq!(f.name, "gen");
        let body = f.body.clone().expect("fn has a body");
        assert!(p.toks[body.start].is_punct('{'));
        assert!(p.toks[body.end - 1].is_punct('}'));
    }

    #[test]
    fn nested_items_are_found_with_depths() {
        let p = parse("fn outer() { fn inner() {} static K: u32 = 1; }\nstatic MUT: u32 = 2;\n");
        let fns: Vec<&Item> = p.items_of(ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].depth, 0);
        assert_eq!(fns[1].depth, 1);
        let statics: Vec<&Item> = p.items_of(ItemKind::Static).collect();
        assert_eq!(statics.len(), 2);
        assert_eq!((statics[0].name.as_str(), statics[0].depth), ("K", 1));
        assert_eq!((statics[1].name.as_str(), statics[1].depth), ("MUT", 0));
    }

    #[test]
    fn static_mut_is_marked() {
        let p = parse("static mut COUNTER: u64 = 0;\nstatic PLAIN: u64 = 0;\n");
        let statics: Vec<&Item> = p.items_of(ItemKind::Static).collect();
        assert_eq!(statics.len(), 2);
        assert!(statics[0].is_mut_static);
        assert_eq!(statics[0].name, "COUNTER");
        assert!(!statics[1].is_mut_static);
    }

    #[test]
    fn static_lifetimes_are_not_static_items() {
        let p = parse("fn f(s: &'static str) -> &'static str { s }\n");
        assert_eq!(p.items_of(ItemKind::Static).count(), 0);
    }

    #[test]
    fn mod_decl_vs_inline_mod() {
        let p = parse("mod filemod;\nmod inline_mod { fn g() {} }\n");
        let mods: Vec<&Item> = p.items_of(ItemKind::Mod).collect();
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[0].name, "filemod");
        assert!(mods[0].body.is_none());
        assert_eq!(mods[1].name, "inline_mod");
        assert!(mods[1].body.is_some());
    }

    #[test]
    fn use_items_are_counted() {
        let p = parse("use std::collections::BTreeMap;\nuse crate::lexer::{Tok, TokKind};\n");
        assert_eq!(p.items_of(ItemKind::Use).count(), 2);
    }

    #[test]
    fn call_sites_skip_keywords_and_definitions() {
        let p = parse("fn f() { g(1); h.method(2); if x { g(3) } fn nested() {} nested(); }\n");
        let calls = p.call_sites(0);
        let names: Vec<(&str, bool)> =
            calls.iter().map(|c| (c.name.as_str(), c.is_method)).collect();
        assert_eq!(names, vec![("g", false), ("method", true), ("g", false), ("nested", false)]);
    }

    #[test]
    fn enclosing_fn_picks_the_tightest_body() {
        let p = parse("fn outer() { fn inner() { marker(); } }\n");
        let call_tok =
            p.toks.iter().position(|t| t.is_ident("marker")).expect("marker call is in the stream");
        let idx = p.enclosing_fn(call_tok).expect("marker is inside a fn");
        assert_eq!(p.items[idx].name, "inner");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let p = parse("fn live() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n");
        let fns: Vec<&Item> = p.items_of(ItemKind::Fn).collect();
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn garbage_input_never_panics() {
        for src in ["fn", "fn {", "struct ; } {", "static mut", "mod", "use", "fn f(((("] {
            let _ = parse(src);
        }
    }
}
