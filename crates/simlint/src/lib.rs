//! `simlint` — the workspace determinism & hygiene analyzer.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! Every result this reproduction reports rests on bit-exact determinism:
//! golden-parity fixtures, the Engine's content-addressed `CanonicalKey`
//! cache cells, and perf fingerprints all assume the simulator never
//! consults wall clocks, unseeded entropy, or unordered-iteration
//! collections. `simlint` enforces those invariants statically, at the
//! source line, before they cost a fixture re-pin.
//!
//! The analyzer is self-contained: a hand-rolled, comment/string/char-aware
//! lexer ([`lexer`]) feeds token-level rules ([`rules`], [`manifest`]) — no
//! external parser, because the build environment is offline-vendored. The
//! rule catalog is in [`rules::RULES`]; run `simlint --list-rules` for the
//! same text. Findings can be waived only line-by-line, with a reason:
//!
//! ```text
//! type IdSet = HashSet<u64>; // simlint: allow(nondet-collections, "membership only")
//! ```
//!
//! and every waiver is surfaced in the report. The binary exits 1 on any
//! unsuppressed finding, which is what CI gates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exemptions;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use manifest::SourceFile;
use report::{Finding, Report};

/// Workspace-relative path of the committed `CanonicalKey` fingerprint
/// manifest maintained by `simlint --fix-manifest`.
pub const MANIFEST_PATH: &str = "crates/simlint/canon_manifest.json";

/// Fixture corpora under the root `tests/` directory are lint-rule inputs,
/// not workspace sources; the walker skips them.
const FIXTURE_DIR: &str = "tests/simlint_fixtures";

/// Which rules a run enables (`--rule` narrows the default "all").
#[derive(Debug, Clone)]
pub struct RuleFilter {
    enabled: Option<BTreeSet<String>>,
}

impl RuleFilter {
    /// Enables every rule in the catalog.
    pub fn all() -> RuleFilter {
        RuleFilter { enabled: None }
    }

    /// Enables only the named rules; rejects unknown ids.
    pub fn only<S: AsRef<str>>(ids: &[S]) -> Result<RuleFilter, String> {
        let mut set = BTreeSet::new();
        for id in ids {
            let id = id.as_ref();
            if rules::rule_by_id(id).is_none() {
                return Err(format!("unknown rule '{id}'; see simlint --list-rules"));
            }
            set.insert(id.to_string());
        }
        Ok(RuleFilter { enabled: Some(set) })
    }

    /// Is `id` enabled under this filter?
    pub fn enabled(&self, id: &str) -> bool {
        self.enabled.as_ref().is_none_or(|s| s.contains(id))
    }

    /// The enabled rule ids, in catalog order.
    pub fn rule_ids(&self) -> Vec<String> {
        rules::RULES.iter().filter(|r| self.enabled(r.id)).map(|r| r.id.to_string()).collect()
    }
}

/// One first-party crate (the root umbrella package or a `crates/*` member).
#[derive(Debug, Clone)]
struct CrateInfo {
    /// Workspace-relative directory ("" for the root package).
    dir: String,
    /// Package name from `Cargo.toml`.
    name: String,
}

/// A handle on the workspace to analyze.
#[derive(Debug)]
pub struct Workspace {
    root: PathBuf,
}

impl Workspace {
    /// Opens the workspace rooted at `root` (must contain a `Cargo.toml`
    /// with a `[workspace]` table).
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Workspace> {
        let root = root.into();
        let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
        if !manifest.contains("[workspace]") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} is not a workspace root", root.display()),
            ));
        }
        Ok(Workspace { root })
    }

    /// Finds the workspace root by walking up from the current directory.
    pub fn discover() -> io::Result<Workspace> {
        let mut dir = std::env::current_dir()?;
        loop {
            if let Ok(ws) = Workspace::open(&dir) {
                return Ok(ws);
            }
            if !dir.pop() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "no workspace Cargo.toml above the current directory",
                ));
            }
        }
    }

    /// The workspace root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn crates(&self) -> io::Result<Vec<CrateInfo>> {
        let mut out = vec![CrateInfo {
            dir: String::new(),
            name: package_name(&fs::read_to_string(self.root.join("Cargo.toml"))?)
                .unwrap_or_else(|| "root".to_string()),
        }];
        let crates_dir = self.root.join("crates");
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let toml = fs::read_to_string(dir.join("Cargo.toml"))?;
            let dir_name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .expect("crates/* entries have UTF-8 directory names")
                .to_string();
            out.push(CrateInfo {
                dir: format!("crates/{dir_name}"),
                name: package_name(&toml).unwrap_or(dir_name),
            });
        }
        Ok(out)
    }

    /// Reads every scannable source file: `src/`, `tests/` (minus the
    /// fixture corpus), `benches/` and `examples/` of the root package and
    /// every `crates/*` member. Vendored shims are out of scope by
    /// construction. Paths are workspace-relative, `/`-separated, sorted.
    fn read_sources(&self, crates: &[CrateInfo]) -> io::Result<Vec<SourceFile>> {
        let mut files = Vec::new();
        for c in crates {
            for sub in ["src", "tests", "benches", "examples"] {
                let rel_base =
                    if c.dir.is_empty() { sub.to_string() } else { format!("{}/{sub}", c.dir) };
                let abs = self.root.join(&rel_base);
                if !abs.is_dir() {
                    continue;
                }
                let mut paths = Vec::new();
                walk_rs(&abs, &mut paths)?;
                for p in paths {
                    let rel = format!(
                        "{rel_base}/{}",
                        p.strip_prefix(&abs)
                            .expect("walk_rs only yields paths under its base")
                            .to_str()
                            .expect("workspace sources have UTF-8 paths")
                            .replace('\\', "/")
                    );
                    if rel.starts_with(FIXTURE_DIR) {
                        continue;
                    }
                    files.push(SourceFile {
                        path: rel,
                        crate_name: c.name.clone(),
                        source: fs::read_to_string(&p)?,
                    });
                }
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(files)
    }

    /// Runs the enabled rules over the workspace and returns the report.
    pub fn analyze(&self, filter: &RuleFilter) -> io::Result<Report> {
        let crates = self.crates()?;
        let files = self.read_sources(&crates)?;
        let mut findings: Vec<Finding> = Vec::new();

        // Parse every file once; the module graph places each file for
        // scoped exemptions and the call graph feeds the flow rules.
        let parsed: Vec<parse::ParsedFile> = files
            .iter()
            .map(|f| parse::ParsedFile::parse(&f.path, &f.crate_name, &f.source))
            .collect();
        let modules = graph::ModuleGraph::build(&parsed);
        let calls = graph::CallGraph::build(&parsed);

        // Per-file rules, then cross-file flow rules, then workspace-level
        // rules, then suppression — suppression must see *all* findings on
        // a line (a canon-manifest waiver sits on the struct definition
        // line) and runs once per file so stale allow directives are
        // flagged even in clean files.
        let mut per_file: std::collections::BTreeMap<&str, Vec<Finding>> = files
            .iter()
            .map(|f| {
                (
                    f.path.as_str(),
                    rules::scan_source_in(&f.path, &modules.module_of(&f.path), &f.source),
                )
            })
            .collect();

        for f in flow::scan(&parsed, &modules, &calls) {
            match per_file.get_mut(f.file.as_str()) {
                Some(list) => list.push(f),
                None => findings.push(f),
            }
        }

        for c in &crates {
            let lib_rel = if c.dir.is_empty() {
                "src/lib.rs".to_string()
            } else {
                format!("{}/src/lib.rs", c.dir)
            };
            let cargo_rel = if c.dir.is_empty() {
                "Cargo.toml".to_string()
            } else {
                format!("{}/Cargo.toml", c.dir)
            };
            let lib_src = files
                .iter()
                .find(|f| f.path == lib_rel)
                .map(|f| f.source.as_str())
                .unwrap_or_default();
            let cargo_src = fs::read_to_string(self.root.join(&cargo_rel))?;
            for f in rules::check_lint_header(&lib_rel, lib_src, &cargo_rel, &cargo_src) {
                match per_file.get_mut(f.file.as_str()) {
                    Some(list) => list.push(f),
                    None => findings.push(f),
                }
            }
        }

        let inv = manifest::collect(&files);
        let manifest_text = fs::read_to_string(self.root.join(MANIFEST_PATH)).ok();
        for f in manifest::diff(&inv, MANIFEST_PATH, manifest_text.as_deref()) {
            match per_file.get_mut(f.file.as_str()) {
                Some(list) => list.push(f),
                None => findings.push(f),
            }
        }

        for f in &files {
            let list = per_file
                .get_mut(f.path.as_str())
                .expect("per_file was seeded with every scanned path");
            rules::apply_suppressions_in(&f.path, &modules.module_of(&f.path), &f.source, list);
        }
        findings.extend(per_file.into_values().flatten());
        findings.retain(|f| filter.enabled(f.rule));

        let mut report = Report {
            root: self.root.display().to_string(),
            files_scanned: files.len(),
            rules: filter.rule_ids(),
            findings,
        };
        report.sort();
        Ok(report)
    }

    /// The workspace-relative paths of every file the analyzer scans —
    /// including `crates/simlint` itself, which is subject to its own rules
    /// (the self-scan test pins that property so the linter can never
    /// silently exempt its own sources).
    pub fn source_paths(&self) -> io::Result<Vec<String>> {
        let crates = self.crates()?;
        Ok(self.read_sources(&crates)?.into_iter().map(|f| f.path).collect())
    }

    /// Re-pins the `CanonicalKey` fingerprint manifest from the current
    /// tree. Returns the number of pinned types.
    pub fn fix_manifest(&self) -> io::Result<usize> {
        let crates = self.crates()?;
        let files = self.read_sources(&crates)?;
        let inv = manifest::collect(&files);
        let text = manifest::render_manifest(&inv);
        fs::write(self.root.join(MANIFEST_PATH), &text)?;
        let pinned =
            manifest::parse_manifest(&text).expect("render_manifest emits schema-1 JSON").len();
        Ok(pinned)
    }
}

/// Runs the full rule pipeline over a single source, as if it lived at
/// `virtual_path` in the workspace: the path controls kind classification
/// and (through the path-derived module placement) the module-scoped
/// exemptions. Single-file shorthand for [`analyze_sources`] — cross-file
/// rules see a one-file workspace.
pub fn analyze_source_as(virtual_path: &str, source: &str) -> Vec<Finding> {
    analyze_sources(&[SourceFile {
        path: virtual_path.to_string(),
        crate_name: "virtual".to_string(),
        source: source.to_string(),
    }])
}

/// Runs the full per-file **and** cross-file pipeline over a set of virtual
/// sources, as if they formed the workspace: per-file rules with
/// module-scoped exemptions, the flow rules over the module/call graphs,
/// then suppression handling. This is the entry point the cross-file
/// fixture tests use; it does not touch the disk (so the workspace-level
/// `lint-header` / `canon-manifest` checks, which need `Cargo.toml`s and
/// the pinned manifest, are out of scope here).
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Finding> {
    let parsed: Vec<parse::ParsedFile> =
        files.iter().map(|f| parse::ParsedFile::parse(&f.path, &f.crate_name, &f.source)).collect();
    let modules = graph::ModuleGraph::build(&parsed);
    let calls = graph::CallGraph::build(&parsed);
    let mut per_file: std::collections::BTreeMap<&str, Vec<Finding>> = files
        .iter()
        .map(|f| {
            (
                f.path.as_str(),
                rules::scan_source_in(&f.path, &modules.module_of(&f.path), &f.source),
            )
        })
        .collect();
    for f in flow::scan(&parsed, &modules, &calls) {
        per_file
            .get_mut(f.file.as_str())
            .expect("flow findings only anchor in scanned files")
            .push(f);
    }
    for f in files {
        let list =
            per_file.get_mut(f.path.as_str()).expect("per_file was seeded with every scanned path");
        rules::apply_suppressions_in(&f.path, &modules.module_of(&f.path), &f.source, list);
    }
    let mut findings: Vec<Finding> = per_file.into_values().flatten().collect();
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
    findings
}

/// Extracts `name = "..."` from a Cargo.toml `[package]` table.
fn package_name(cargo_toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_reads_the_package_table_only() {
        let toml =
            "[workspace]\nmembers = []\n\n[package]\nname = \"simlint\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml), Some("simlint".to_string()));
        assert_eq!(package_name("[dependencies]\nname = \"nope\"\n"), None);
    }

    #[test]
    fn rule_filter_validates_ids() {
        assert!(RuleFilter::only(&["nondet-time", "float-eq"]).is_ok());
        assert!(RuleFilter::only(&["no-such-rule"]).is_err());
        let f = RuleFilter::only(&["float-eq"]).expect("float-eq is a known rule");
        assert!(f.enabled("float-eq"));
        assert!(!f.enabled("nondet-time"));
        assert_eq!(RuleFilter::all().rule_ids().len(), rules::RULES.len());
    }

    #[test]
    fn analyze_source_as_applies_path_scoping() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let hits = analyze_source_as("crates/cpu/src/core.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].line, hits[0].column), (1, 18));
        // Same code in the perf harness (allowlisted) and in a test file.
        assert!(analyze_source_as("crates/bench/src/perf.rs", src).is_empty());
        assert!(analyze_source_as("tests/perf.rs", src).is_empty());
    }
}
