#!/usr/bin/env bash
# Seeded-violation smoke test for simlint.
#
# Injects a merge function with three deliberate determinism violations
# into crates/bench/src/engine.rs — an ambient thread_rng() draw, an RNG
# stream captured by a parallel_map shard closure, and a float `+=` in the
# merge region — then asserts that `cargo run -p simlint` exits 1 and
# reports each one at its exact file:line:col. The injection is reverted
# on every exit path; this script must leave the tree clean.
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=crates/bench/src/engine.rs
if ! git diff --quiet -- "$TARGET"; then
    echo "simlint-smoke: $TARGET has local modifications; refusing to inject" >&2
    exit 2
fi
cleanup() { git checkout -- "$TARGET"; }
trap cleanup EXIT

BASE=$(wc -l < "$TARGET")
cat >> "$TARGET" <<'EOF'

// simlint smoke injection — reverted by scripts/simlint-smoke.sh.
fn simlint_smoke_merge(items: Vec<f64>, seed: u64) -> f64 {
    let _jitter = thread_rng();
    let mut rng = SimRng::new(seed);
    let outs = parallel_map(items, 2, |x| x * rng.next_f64());
    let mut total = 0.0;
    for o in &outs {
        total += o;
    }
    total
}
EOF

OUT=$(mktemp)
set +e
cargo run -p simlint --release --quiet > "$OUT" 2>&1
STATUS=$?
set -e

if [ "$STATUS" -ne 1 ]; then
    echo "simlint-smoke: expected exit 1 on the seeded violations, got $STATUS" >&2
    cat "$OUT" >&2
    rm -f "$OUT"
    exit 2
fi

# Human lines are `path:line:col: rule: message`; the snippet's shape is
# fixed, so the columns are constants and the lines are offsets from the
# pre-injection length of the target file.
expect() {
    local needle="$TARGET:$1:$2: $3:"
    if ! grep -qF "$needle" "$OUT"; then
        echo "simlint-smoke: missing expected finding $needle" >&2
        cat "$OUT" >&2
        rm -f "$OUT"
        exit 2
    fi
}
expect "$((BASE + 4))" 19 nondet-time      # thread_rng() ambient entropy
expect "$((BASE + 6))" 47 rng-discipline   # rng captured by the shard closure
expect "$((BASE + 9))" 15 reduction-order  # float += in the merge region

rm -f "$OUT"
echo "simlint-smoke: all 3 seeded violations caught at their exact spans (exit 1)"
