//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment cannot reach crates.io (see `vendor/README.md`), so
//! this shim provides the small JSON surface the workspace actually uses: an
//! owned [`Value`] tree plus [`to_string`] / [`to_string_pretty`] over it.
//! It does not implement generic `Serialize`-driven encoding — callers build
//! a [`Value`] explicitly (see `stretch_bench::report::json`).
#![forbid(unsafe_code)]

use std::fmt;

/// Map type backing [`Value::Object`], mirroring `serde_json::Map<String,
/// Value>` (`new` / `insert` / iteration). Keys are deterministically
/// ordered, matching the real crate's `preserve_order = off` behaviour of
/// a sorted map.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; non-finite values render as `null`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministically ordered keys.
    Object(Map<String, Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    fn write(&self, f: &mut fmt::Formatter<'_>, pretty: bool, indent: usize) -> fmt::Result {
        const PAD: &str = "  ";
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        for _ in 0..=indent {
                            f.write_str(PAD)?;
                        }
                    }
                    item.write(f, pretty, indent + 1)?;
                }
                if pretty && !items.is_empty() {
                    f.write_str("\n")?;
                    for _ in 0..indent {
                        f.write_str(PAD)?;
                    }
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        for _ in 0..=indent {
                            f.write_str(PAD)?;
                        }
                    }
                    write_escaped(f, k)?;
                    f.write_str(if pretty { ": " } else { ":" })?;
                    v.write(f, pretty, indent + 1)?;
                }
                if pretty && !map.is_empty() {
                    f.write_str("\n")?;
                    for _ in 0..indent {
                        f.write_str(PAD)?;
                    }
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, f.alternate(), 0)
    }
}

/// Serialise a [`Value`] to a compact JSON string. Infallible for `Value`.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(format!("{value}"))
}

/// Serialise a [`Value`] to a pretty-printed JSON string.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    Ok(format!("{value:#}"))
}

/// Error type mirroring `serde_json::Error` (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let mut m = Map::new();
        m.insert("name".to_string(), Value::from("web-search"));
        m.insert("p99_ms".to_string(), Value::from(12.5));
        m.insert("ok".to_string(), Value::from(true));
        m.insert("tags".to_string(), Value::from(vec!["qos", "smt"]));
        assert_eq!(
            to_string(&Value::Object(m)).unwrap(),
            r#"{"name":"web-search","ok":true,"p99_ms":12.5,"tags":["qos","smt"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_print_indents() {
        let mut m = Map::new();
        m.insert("k".to_string(), Value::from(1u64));
        assert_eq!(to_string_pretty(&Value::Object(m)).unwrap(), "{\n  \"k\": 1\n}");
    }
}
