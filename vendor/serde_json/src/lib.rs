//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment cannot reach crates.io (see `vendor/README.md`), so
//! this shim provides the small JSON surface the workspace actually uses: an
//! owned [`Value`] tree, [`to_string`] / [`to_string_pretty`] over it, and a
//! [`from_str`] parser back into [`Value`] (used by the `stretch-bench`
//! result store). It does not implement generic `Serialize`-driven encoding —
//! callers build a [`Value`] explicitly (see `stretch_bench::report::json`).
#![forbid(unsafe_code)]

use std::fmt;

/// Map type backing [`Value::Object`], mirroring `serde_json::Map<String,
/// Value>` (`new` / `insert` / iteration). Keys are deterministically
/// ordered, matching the real crate's `preserve_order = off` behaviour of
/// a sorted map.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; non-finite values render as `null`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministically ordered keys.
    Object(Map<String, Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Object field access by key (`None` for non-objects / missing keys),
    /// mirroring `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, pretty: bool, indent: usize) -> fmt::Result {
        const PAD: &str = "  ";
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        for _ in 0..=indent {
                            f.write_str(PAD)?;
                        }
                    }
                    item.write(f, pretty, indent + 1)?;
                }
                if pretty && !items.is_empty() {
                    f.write_str("\n")?;
                    for _ in 0..indent {
                        f.write_str(PAD)?;
                    }
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        for _ in 0..=indent {
                            f.write_str(PAD)?;
                        }
                    }
                    write_escaped(f, k)?;
                    f.write_str(if pretty { ": " } else { ":" })?;
                    v.write(f, pretty, indent + 1)?;
                }
                if pretty && !map.is_empty() {
                    f.write_str("\n")?;
                    for _ in 0..indent {
                        f.write_str(PAD)?;
                    }
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, f.alternate(), 0)
    }
}

/// Serialise a [`Value`] to a compact JSON string. Infallible for `Value`.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(format!("{value}"))
}

/// Serialise a [`Value`] to a pretty-printed JSON string.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    Ok(format!("{value:#}"))
}

/// Parses a JSON document into a [`Value`].
///
/// Supports the full JSON grammar the serialiser emits (and standard JSON in
/// general): `null`, booleans, numbers (parsed as `f64` — round-trip exact
/// for values the serialiser printed, since Rust's shortest-representation
/// float formatting parses back to the identical bits), escaped strings,
/// arrays and objects.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem encountered,
/// including trailing non-whitespace after the document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters after JSON document", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::at("unexpected end", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at("unexpected character", self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::at("invalid literal", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_literal("null").map(|()| Value::Null),
            b't' => self.eat_literal("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_literal("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::String),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number bytes", start))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| Error::at("invalid number", start))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::at("unterminated string", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xd800..0xdc00).contains(&code) {
                                // High surrogate: combine with the following
                                // `\uXXXX` low surrogate (standard JSON).
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::at("unpaired surrogate", self.pos));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                            } else {
                                // Lone low surrogates are invalid; map them
                                // to the replacement character.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        _ => return Err(Error::at("unknown escape", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::at("invalid UTF-8 in string", start))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at("expected ',' or '}'", self.pos)),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Error type mirroring `serde_json::Error` (produced by [`from_str`]).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn at(msg: &str, pos: usize) -> Error {
        Error { msg: format!("{msg} at byte {pos}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let mut m = Map::new();
        m.insert("name".to_string(), Value::from("web-search"));
        m.insert("p99_ms".to_string(), Value::from(12.5));
        m.insert("ok".to_string(), Value::from(true));
        m.insert("tags".to_string(), Value::from(vec!["qos", "smt"]));
        assert_eq!(
            to_string(&Value::Object(m)).unwrap(),
            r#"{"name":"web-search","ok":true,"p99_ms":12.5,"tags":["qos","smt"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_print_indents() {
        let mut m = Map::new();
        m.insert("k".to_string(), Value::from(1u64));
        assert_eq!(to_string_pretty(&Value::Object(m)).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn parses_what_it_prints() {
        let mut m = Map::new();
        m.insert("name".to_string(), Value::from("web-search"));
        m.insert("uipc".to_string(), Value::from(1.2345678901234567));
        m.insert("ok".to_string(), Value::from(true));
        m.insert("none".to_string(), Value::Null);
        m.insert("counts".to_string(), Value::from(vec![1u64, 2, 3]));
        let original = Value::Object(m);
        for text in [to_string(&original).unwrap(), to_string_pretty(&original).unwrap()] {
            let parsed = from_str(&text).expect("round-trip parse");
            assert_eq!(parsed, original, "parse({text}) must round-trip");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 12345.6789, f64::MAX] {
            let text = to_string(&Value::from(v)).unwrap();
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀", "UTF-16 surrogate pair combines to one scalar");
        let raw = from_str("\"😀\"").unwrap();
        assert_eq!(raw.as_str().unwrap(), "😀", "raw UTF-8 passes through");
        assert!(from_str(r#""\ud83d""#).is_err(), "unpaired high surrogate rejected");
        assert!(from_str(r#""\ud83dx""#).is_err(), "high surrogate without \\u rejected");
        assert!(from_str(r#""\ud83dA""#).is_err(), "bad low surrogate rejected");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn accessors_match_variants() {
        let v = from_str(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(1));
        assert!(v.get("missing").is_none());
        assert!(v.as_object().is_some());
        assert_eq!(v.get("s").and_then(Value::as_u64), None);
    }
}
