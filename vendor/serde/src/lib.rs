//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace vendors a minimal API-compatible subset of `serde` (see
//! `vendor/README.md`). The simulator crates import
//! `serde::{Serialize, Deserialize}` and derive both traits on their result
//! and configuration types, but no code path in the workspace currently
//! serialises a value, so marker traits are sufficient. Swapping this shim
//! for the real crate is a one-line change in the workspace manifest.
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The real trait's methods are omitted: nothing in the workspace calls
/// them, and the vendored [`serde_derive`] macros expand to nothing.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of the `serde::ser` module namespace.
pub mod ser {
    pub use super::Serialize;
}

/// Mirror of the `serde::de` module namespace.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
