//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal API-compatible subset of the external
//! dependencies it names (see `vendor/README.md`). Nothing in the workspace
//! ever *serialises* a value — `#[derive(Serialize, Deserialize)]` is used
//! purely as a forward-looking annotation — so these derives are free to
//! expand to nothing. The `serde` helper attribute is still registered so
//! that `#[serde(...)]` field attributes would not be rejected if a future
//! change introduces them.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`. Expands to nothing (marker only).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`. Expands to nothing (marker only).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
