//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io (see `vendor/README.md`), so
//! this shim implements the subset of the proptest API that
//! `tests/properties.rs` uses: the [`strategy::Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], the [`proptest!`] macro with an inline
//! `#![proptest_config(..)]` attribute, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike the real crate it does **not** shrink failing inputs; it generates
//! `cases` deterministic pseudo-random inputs per property (seeded from the
//! property name, so failures are reproducible run-to-run) and asserts the
//! body on each.
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and deterministic RNG for property execution.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property against `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG used to generate test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a property name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Mirror of `proptest::strategy::Strategy`, minus shrinking: `generate`
    /// replaces the real crate's value-tree machinery.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(width) as $ty)
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    //! Mirror of `proptest::arbitrary`: [`any`] and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value of this type.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_with(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced; the real crate also generates specials,
            // but no property in this workspace relies on them.
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T` — mirror of `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Mirror of `proptest::collection`: the [`vec()`] strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works, as in the real
    /// crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// Supports the form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..10, mut v in prop::collection::vec(0usize..4, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($bound:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $bound = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut case = move || -> () { $body };
                    case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the property harness (here: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -4i32..9, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, 0.0f64..1.0).prop_map(|(a, b)| (a as f64) + b) ) {
            prop_assert!((0.0..4.0).contains(&pair));
        }

        #[test]
        fn vec_lengths_respect_range(mut v in prop::collection::vec(0usize..5, 2..9)) {
            v.sort_unstable();
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("name");
        let mut b = TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
